//! The tiering engine: residency classification, hysteretic
//! promotion/demotion, and the epoch clock.
//!
//! Policy shape:
//!
//! * every access bumps the object's heat ([`TierMap::touch`]); every
//!   epoch halves it — heat is an exponentially-decayed access count;
//! * a cold object whose heat crosses `promote_at` is queued for
//!   promotion (once — a bitmap dedups the queue);
//! * promotions launch at epoch boundaries within a byte budget and
//!   ride the *same* cold-store pipe as demand misses, so migrations
//!   contend with serving but can never exceed the configured budget;
//! * demotion is metadata-only (the cold store keeps the canonical
//!   copy of every immutable object) and happens only under capacity
//!   pressure, taking victims with heat ≤ `demote_below`.
//!
//! Hysteresis: `promote_at` ≫ `demote_below` and the decay clock mean
//! a just-promoted object needs several quiet epochs before it is
//! even *eligible* for demotion — oscillating popularity cannot
//! thrash an object back and forth (tested below).

use crate::backend::{ColdObjectStore, ColdStoreConfig, GetTicket, StorageBackend};
use crate::map::TierMap;
use dcn_simcore::{Nanos, RankPerm};
use dcn_store::{Catalog, FileId};
use std::collections::VecDeque;

/// High bit of a cold-store token marks an internal promotion read
/// (never surfaced to the serving path).
pub const PROMO_TOKEN_BIT: u64 = 1 << 63;

/// Tiering knobs. `Default` models a 40%-hot split with S3-shaped
/// cold storage and a promotion budget small enough that migrations
/// can never crowd out demand misses.
#[derive(Clone, Copy, Debug)]
pub struct TierConfig {
    /// Fraction of the catalog resident on the hot tier at any time
    /// (capacity, and the initially-seeded popular set).
    pub hot_frac: f64,
    pub cold: ColdStoreConfig,
    /// Heat added per access.
    pub touch_step: u8,
    /// Cold object at/above this heat ⇒ queue for promotion.
    pub promote_at: u8,
    /// Hot object at/below this heat ⇒ demotion victim (only under
    /// capacity pressure).
    pub demote_below: u8,
    /// Decay + migration cadence.
    pub epoch: Nanos,
    /// Max bytes of promotions launched per epoch.
    pub promote_budget_bytes: u64,
    /// Seed for the popularity-rank → object-id permutation; must
    /// match the workload's sampler so the seeded hot set covers the
    /// popular head.
    pub perm_seed: u64,
}

impl Default for TierConfig {
    fn default() -> Self {
        TierConfig {
            hot_frac: 0.4,
            cold: ColdStoreConfig::default(),
            touch_step: 3,
            promote_at: 12,
            demote_below: 2,
            epoch: Nanos::from_millis(50),
            promote_budget_bytes: 8 << 20,
            perm_seed: 0x007E_1A11,
        }
    }
}

/// Where a requested object currently lives.
#[derive(Clone, Copy, PartialEq, Eq, Debug)]
pub enum Placement {
    Hot,
    Cold,
}

/// Plain counters, mirrored into `tier.*` registry metrics by the
/// servers.
#[derive(Clone, Copy, Debug, Default)]
pub struct TierStats {
    pub hot_hits: u64,
    pub cold_misses: u64,
    pub promotions: u64,
    pub demotions: u64,
    /// Promotions deferred because no demotion victim was cold enough
    /// (capacity full of genuinely hot objects).
    pub promote_deferred: u64,
    pub promoted_bytes: u64,
    pub epochs: u64,
}

/// One engine per server: owns the cold store, the residency map, and
/// the migration policy. All state advances on the virtual clock.
pub struct TierEngine {
    pub cfg: TierConfig,
    map: TierMap,
    pub cold: ColdObjectStore,
    perm: RankPerm,
    file_size: u64,
    promo_q: VecDeque<FileId>,
    next_epoch: Nanos,
    demote_cursor: u64,
    scratch: Vec<GetTicket>,
    pub stats: TierStats,
}

impl TierEngine {
    #[must_use]
    pub fn new(cfg: TierConfig, catalog: &Catalog, seed: u64) -> Self {
        let n = catalog.n_files();
        let mut map = TierMap::new(n);
        let perm = RankPerm::new(n, cfg.perm_seed);
        // Seed the hot tier with the popular head: ranks 0..capacity
        // through the same rank→id permutation the Zipf workload uses,
        // so "popular" means the same thing on both sides.
        let capacity = Self::capacity_for(cfg.hot_frac, n);
        for rank in 0..capacity {
            map.set_hot(FileId(perm.apply(rank)));
        }
        TierEngine {
            cfg,
            map,
            cold: ColdObjectStore::new(cfg.cold, seed ^ 0x7E1A_C01D),
            perm,
            file_size: catalog.file_size(),
            promo_q: VecDeque::with_capacity(1024),
            next_epoch: cfg.epoch,
            demote_cursor: 0,
            scratch: Vec::with_capacity(64),
            stats: TierStats::default(),
        }
    }

    fn capacity_for(hot_frac: f64, n: u64) -> u64 {
        ((n as f64 * hot_frac) as u64).clamp(1, n)
    }

    /// Hot-tier object capacity.
    #[must_use]
    pub fn capacity(&self) -> u64 {
        Self::capacity_for(self.cfg.hot_frac, self.map.len())
    }

    #[must_use]
    pub fn is_hot(&self, f: FileId) -> bool {
        self.map.is_hot(f)
    }

    #[must_use]
    pub fn hot_count(&self) -> u64 {
        self.map.hot_count()
    }

    #[must_use]
    pub fn heat(&self, f: FileId) -> u8 {
        self.map.heat(f)
    }

    /// The shared popularity permutation (rank → object id).
    #[must_use]
    pub fn perm(&self) -> &RankPerm {
        &self.perm
    }

    #[must_use]
    pub fn hit_ratio(&self) -> f64 {
        let total = self.stats.hot_hits + self.stats.cold_misses;
        if total == 0 {
            return 1.0;
        }
        self.stats.hot_hits as f64 / total as f64
    }

    /// Classify an object access: bump heat, count the hit/miss, and
    /// queue a promotion candidate when a cold object crosses the
    /// threshold. Call once per request (not per byte-range fetch).
    pub fn classify(&mut self, f: FileId) -> Placement {
        let heat = self.map.touch(f, self.cfg.touch_step);
        if self.map.is_hot(f) {
            self.stats.hot_hits += 1;
            Placement::Hot
        } else {
            self.stats.cold_misses += 1;
            if heat >= self.cfg.promote_at && !self.map.is_queued(f) {
                self.map.set_queued(f);
                self.promo_q.push_back(f);
            }
            Placement::Cold
        }
    }

    /// Residency without side effects (per-fetch path; classification
    /// and heat accounting happen once per request in `classify`).
    #[must_use]
    pub fn placement(&self, f: FileId) -> Placement {
        if self.map.is_hot(f) {
            Placement::Hot
        } else {
            Placement::Cold
        }
    }

    /// Start a cold fetch for the serving path; completion arrives via
    /// [`Self::drain_serving`]. `token` must not set
    /// [`PROMO_TOKEN_BIT`].
    pub fn cold_fetch(
        &mut self,
        now: Nanos,
        file: FileId,
        offset: u64,
        len: u64,
        token: u64,
    ) -> Nanos {
        debug_assert_eq!(token & PROMO_TOKEN_BIT, 0);
        self.cold.get_range(now, file, offset, len, token)
    }

    /// Drain completed cold reads: serving tickets go to `out`;
    /// promotion reads are absorbed (the object becomes hot).
    pub fn drain_serving(&mut self, now: Nanos, out: &mut Vec<GetTicket>) {
        self.scratch.clear();
        self.cold.drain_completed(now, &mut self.scratch);
        for i in 0..self.scratch.len() {
            let t = self.scratch[i];
            if t.token & PROMO_TOKEN_BIT != 0 {
                self.map.set_hot(t.file);
                self.map.clear_queued(t.file);
                self.stats.promotions += 1;
                self.stats.promoted_bytes += t.len;
            } else {
                out.push(t);
            }
        }
    }

    /// Run epoch work (decay + migration launches) if due. Returns
    /// true if an epoch boundary was processed.
    pub fn maybe_epoch(&mut self, now: Nanos) -> bool {
        if now < self.next_epoch {
            return false;
        }
        // Lazy catch-up: an idle stretch spanning K epochs decays K
        // times (the server only calls us when it has other service
        // to do, so quiet periods batch here).
        while self.next_epoch <= now {
            self.next_epoch += self.cfg.epoch;
            self.stats.epochs += 1;
            self.map.decay();
        }
        self.launch_promotions(now);
        true
    }

    fn launch_promotions(&mut self, now: Nanos) {
        let mut budget = self.cfg.promote_budget_bytes;
        let capacity = self.capacity();
        while budget >= self.file_size {
            let Some(f) = self.promo_q.pop_front() else {
                break;
            };
            if self.map.is_hot(f) {
                self.map.clear_queued(f);
                continue;
            }
            // Still worth promoting? Heat decays while queued; an
            // object that cooled below the *demotion* floor would be
            // the next demotion victim — skip it.
            if self.map.heat(f) <= self.cfg.demote_below {
                self.map.clear_queued(f);
                continue;
            }
            // Make room first (metadata-only demotion; cold store
            // retains the canonical copy of every immutable object).
            if self.map.hot_count() >= capacity {
                let mut cursor = self.demote_cursor;
                let victim = self
                    .map
                    .find_cold_victim(&mut cursor, 8192, self.cfg.demote_below);
                self.demote_cursor = cursor;
                match victim {
                    Some(v) => {
                        self.map.clear_hot(v);
                        self.stats.demotions += 1;
                    }
                    None => {
                        // Capacity is full of genuinely warm objects:
                        // defer, keep the candidate queued for a
                        // later epoch.
                        self.stats.promote_deferred += 1;
                        self.promo_q.push_front(f);
                        break;
                    }
                }
            }
            // The promotion read rides the shared cold pipe, so it
            // contends with (and is visible to) demand misses.
            budget -= self.file_size;
            self.cold
                .get_range(now, f, 0, self.file_size, PROMO_TOKEN_BIT | f.0);
        }
    }

    /// Earliest time this engine needs the server to advance it:
    /// pending cold completions, or the next epoch boundary when
    /// promotions are queued. Decay-only epochs don't wake an
    /// otherwise-idle server — [`Self::maybe_epoch`] catches up
    /// lazily, so a quiescent deployment stays quiescent.
    #[must_use]
    pub fn poll_at(&self) -> Nanos {
        let cold = self.cold.poll_at().unwrap_or(Nanos::MAX);
        if self.promo_q.is_empty() {
            cold
        } else {
            cold.min(self.next_epoch)
        }
    }

    /// Promotion-queue depth (tests).
    #[must_use]
    pub fn queued_promotions(&self) -> usize {
        self.promo_q.len()
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    fn engine(n: u64, hot_frac: f64) -> TierEngine {
        let catalog = Catalog::new(n, 300 * 1024, 4, 7);
        let cfg = TierConfig {
            hot_frac,
            ..TierConfig::default()
        };
        TierEngine::new(cfg, &catalog, 42)
    }

    fn run_epoch(e: &mut TierEngine, now: Nanos) {
        assert!(e.maybe_epoch(now));
        // Let every launched promotion land.
        let mut out = Vec::new();
        e.drain_serving(Nanos::MAX - Nanos::from_millis(1), &mut out);
        assert!(out.is_empty(), "promotions must not surface as serving");
    }

    #[test]
    fn seeds_the_popular_head_hot() {
        let e = engine(10_000, 0.3);
        assert_eq!(e.hot_count(), 3000);
        // The top-ranked objects (through the permutation) are hot.
        for rank in 0..3000 {
            assert!(e.is_hot(FileId(e.perm().apply(rank))));
        }
        for rank in 3000..3100 {
            assert!(!e.is_hot(FileId(e.perm().apply(rank))));
        }
    }

    #[test]
    fn repeated_access_promotes_within_budget() {
        let mut e = engine(1000, 0.1);
        let cold_obj = FileId(e.perm().apply(500)); // deep in the tail
        assert!(!e.is_hot(cold_obj));
        for _ in 0..4 {
            assert_eq!(e.classify(cold_obj), Placement::Cold);
        }
        assert_eq!(e.queued_promotions(), 1);
        run_epoch(&mut e, Nanos::from_millis(50));
        assert!(e.is_hot(cold_obj), "crossed promote_at => promoted");
        assert_eq!(e.stats.promotions, 1);
        assert_eq!(e.stats.demotions, 1, "capacity was full: one victim");
        assert_eq!(e.hot_count(), 100);
    }

    #[test]
    fn promotion_bandwidth_is_bounded() {
        let mut e = engine(10_000, 0.01);
        // Make 200 tail objects promotion candidates in one epoch.
        for rank in 5000..5200 {
            let f = FileId(e.perm().apply(rank));
            for _ in 0..4 {
                e.classify(f);
            }
        }
        assert_eq!(e.queued_promotions(), 200);
        let before = e.cold.stats.bytes;
        assert!(e.maybe_epoch(Nanos::from_millis(50)));
        let launched = e.cold.stats.bytes - before;
        assert!(
            launched <= e.cfg.promote_budget_bytes,
            "epoch launched {launched} > budget {}",
            e.cfg.promote_budget_bytes
        );
        // The rest stay queued for later epochs.
        assert!(e.queued_promotions() > 0);
    }

    #[test]
    fn oscillating_popularity_does_not_thrash() {
        // Object A is accessed in bursts every other epoch; the hot
        // tier is at capacity the whole time. Hysteresis (promote_at
        // ≫ demote_below + halving decay) must keep A resident after
        // its first promotion instead of cycling it in and out.
        let mut e = engine(1000, 0.1);
        let a = FileId(e.perm().apply(700));
        let mut now = Nanos::ZERO;
        for epoch in 0..20 {
            if epoch % 2 == 0 {
                for _ in 0..6 {
                    e.classify(a);
                }
            }
            now += e.cfg.epoch;
            run_epoch(&mut e, now);
        }
        assert!(e.is_hot(a));
        let promos_of_a = e.stats.promotions;
        assert_eq!(promos_of_a, 1, "object must be promoted exactly once");
        // And it was never demoted: demotions only ever took decayed
        // seeded objects, never A (A stays hot => at most one victim
        // per promotion, and A is resident at the end).
        assert_eq!(e.stats.demotions, 1);
    }

    #[test]
    fn demotion_only_under_capacity_pressure() {
        let mut e = engine(1000, 0.1);
        // Many epochs pass with no promotions queued: nothing is
        // demoted even though every seeded object's heat decays to 0.
        let mut now = Nanos::ZERO;
        for _ in 0..10 {
            now += e.cfg.epoch;
            run_epoch(&mut e, now);
        }
        assert_eq!(e.stats.demotions, 0);
        assert_eq!(e.hot_count(), 100);
    }

    #[test]
    fn epoch_replay_is_deterministic() {
        let run = || {
            let mut e = engine(5000, 0.05);
            let mut now = Nanos::ZERO;
            for i in 0..2000u64 {
                let f = FileId(e.perm().apply(i * 7 % 5000));
                e.classify(f);
                if i % 100 == 99 {
                    now += e.cfg.epoch;
                    e.maybe_epoch(now);
                    let mut out = Vec::new();
                    e.drain_serving(now, &mut out);
                }
            }
            (
                e.stats.hot_hits,
                e.stats.cold_misses,
                e.stats.promotions,
                e.stats.demotions,
                e.cold.stats.cost_ucents,
                e.hot_count(),
            )
        };
        assert_eq!(run(), run());
    }
}
