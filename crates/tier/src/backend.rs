//! Storage backends: where a chunk's bytes come from and what the
//! fetch costs in (virtual) time and money.
//!
//! The trait is deliberately byte-range shaped (`get_range`), like an
//! object-store GET with a `Range:` header — the same abstraction
//! whether the bytes come from the local NVMe flat namespace or a
//! remote cold store. Completion is pull-based to match the
//! reproduction's sweep discipline: the server calls
//! [`StorageBackend::drain_completed`] from its `advance()` loop at
//! the times [`StorageBackend::poll_at`] names, so everything stays
//! on the virtual clock and replays bit-identically.

use dcn_simcore::{Bandwidth, Nanos, SimRng};
use dcn_store::{Catalog, FileId};
use std::collections::BTreeMap;

/// A completed byte-range fetch, handed back by
/// [`StorageBackend::drain_completed`].
#[derive(Clone, Copy, Debug)]
pub struct GetTicket {
    /// Caller's correlation token (Atlas uses its fetch token, kstack
    /// its command id).
    pub token: u64,
    pub file: FileId,
    pub offset: u64,
    pub len: u64,
    pub issued_at: Nanos,
    pub done_at: Nanos,
}

/// A tier that can fetch byte ranges of catalog objects.
pub trait StorageBackend {
    /// Short name for tables and metrics.
    fn label(&self) -> &'static str;

    /// Begin fetching `[offset, offset+len)` of `file`; returns the
    /// (virtual) completion time. The ticket comes back from
    /// [`Self::drain_completed`] once `now` reaches it.
    fn get_range(&mut self, now: Nanos, file: FileId, offset: u64, len: u64, token: u64) -> Nanos;

    /// Earliest time a pending fetch completes, if any.
    fn poll_at(&self) -> Option<Nanos>;

    /// Move every fetch with `done_at <= now` into `out` (ascending
    /// completion order, ties by issue order).
    fn drain_completed(&mut self, now: Nanos, out: &mut Vec<GetTicket>);
}

/// Cold-tier parameters. Defaults model a same-region object store
/// reached over the backbone: ~20 ms to first byte, a shared 10 Gb/s
/// egress pipe, and S3-shaped pricing (flat per-request fee plus
/// per-byte egress).
#[derive(Clone, Copy, Debug)]
pub struct ColdStoreConfig {
    /// Request latency before the transfer starts (auth + index +
    /// first byte).
    pub base_latency: Nanos,
    /// Uniform ± fraction applied to `base_latency`, drawn from the
    /// store's own seeded stream (bit-identical replay).
    pub jitter_frac: f64,
    /// Shared transfer pipe for all in-flight GETs (serving and
    /// promotions alike — migrations contend with misses).
    pub bandwidth: Bandwidth,
    /// Flat fee per GET, in micro-cents (≈ $0.40 per million
    /// requests).
    pub cost_per_req_ucents: u64,
    /// Egress fee per GiB, in micro-cents (≈ $0.01/GiB backbone
    /// rate).
    pub cost_per_gib_ucents: u64,
}

impl Default for ColdStoreConfig {
    fn default() -> Self {
        ColdStoreConfig {
            base_latency: Nanos::from_micros(20_000),
            jitter_frac: 0.2,
            bandwidth: Bandwidth::from_gbps(10.0),
            cost_per_req_ucents: 40,
            cost_per_gib_ucents: 10_000,
        }
    }
}

/// Running cold-tier totals (exact integers; exported as `tier.*`
/// metrics by the servers).
#[derive(Clone, Copy, Debug, Default)]
pub struct ColdStats {
    pub requests: u64,
    pub bytes: u64,
    pub cost_ucents: u64,
}

/// The simulated cold object store: per-request latency with seeded
/// jitter, one shared bandwidth pipe, and cost metering. Purely
/// virtual-time — identical call sequences yield identical
/// completion times and costs.
pub struct ColdObjectStore {
    cfg: ColdStoreConfig,
    rng: SimRng,
    /// When the shared transfer pipe frees up.
    next_free: Nanos,
    /// Pending completions, keyed (done_at, seq) so ties drain in
    /// issue order.
    pending: BTreeMap<(Nanos, u64), GetTicket>,
    seq: u64,
    pub stats: ColdStats,
}

impl ColdObjectStore {
    #[must_use]
    pub fn new(cfg: ColdStoreConfig, seed: u64) -> Self {
        ColdObjectStore {
            cfg,
            rng: SimRng::new(seed ^ 0xC01D_5708_0000_0000),
            next_free: Nanos::ZERO,
            pending: BTreeMap::new(),
            seq: 0,
            stats: ColdStats::default(),
        }
    }

    #[must_use]
    pub fn inflight(&self) -> usize {
        self.pending.len()
    }
}

impl StorageBackend for ColdObjectStore {
    fn label(&self) -> &'static str {
        "cold-object-store"
    }

    fn get_range(&mut self, now: Nanos, file: FileId, offset: u64, len: u64, token: u64) -> Nanos {
        let jitter = 1.0 + self.cfg.jitter_frac * (2.0 * self.rng.next_f64() - 1.0);
        let latency = Nanos::from_nanos((self.cfg.base_latency.as_nanos() as f64 * jitter) as u64);
        let xfer = self.cfg.bandwidth.tx_time(len);
        // The request spends `latency` before its transfer can start;
        // transfers serialize on the shared pipe.
        let start = (now + latency).max(self.next_free);
        let done = start + xfer;
        self.next_free = done;
        self.stats.requests += 1;
        self.stats.bytes += len;
        self.stats.cost_ucents +=
            self.cfg.cost_per_req_ucents + ((len * self.cfg.cost_per_gib_ucents) >> 30);
        self.seq += 1;
        self.pending.insert(
            (done, self.seq),
            GetTicket {
                token,
                file,
                offset,
                len,
                issued_at: now,
                done_at: done,
            },
        );
        done
    }

    fn poll_at(&self) -> Option<Nanos> {
        self.pending.keys().next().map(|&(t, _)| t)
    }

    fn drain_completed(&mut self, now: Nanos, out: &mut Vec<GetTicket>) {
        while let Some((&(t, s), _)) = self.pending.first_key_value() {
            if t > now {
                break;
            }
            out.push(self.pending.remove(&(t, s)).unwrap());
        }
    }
}

/// The paper's NVMe flat namespace behind the same trait: per-disk
/// pipes (command overhead + transfer at the drive's sequential
/// rate), routed by the catalog's placement function. Atlas and
/// kstack keep their native diskmap/kernel NVMe paths for serving —
/// this backend exists so the two tiers can be compared like-for-like
/// through one interface (unit tests, `ablation_tiers` sanity rows).
pub struct NvmeFlatBackend {
    catalog: Catalog,
    /// Fixed per-command firmware overhead (P3700-class).
    cmd_overhead: Nanos,
    /// Per-disk sequential-read bandwidth.
    bandwidth: Bandwidth,
    next_free: Vec<Nanos>,
    pending: BTreeMap<(Nanos, u64), GetTicket>,
    seq: u64,
    pub read_bytes: u64,
}

impl NvmeFlatBackend {
    #[must_use]
    pub fn new(catalog: Catalog) -> Self {
        let n = catalog.n_disks();
        NvmeFlatBackend {
            catalog,
            cmd_overhead: Nanos::from_micros(80),
            bandwidth: Bandwidth::from_gbps(22.4), // 2.8 GB/s per drive
            next_free: vec![Nanos::ZERO; n],
            pending: BTreeMap::new(),
            seq: 0,
            read_bytes: 0,
        }
    }
}

impl StorageBackend for NvmeFlatBackend {
    fn label(&self) -> &'static str {
        "nvme-flat"
    }

    fn get_range(&mut self, now: Nanos, file: FileId, offset: u64, len: u64, token: u64) -> Nanos {
        let disk = self
            .catalog
            .locate(file, offset.min(self.catalog.file_size() - 1))
            .disk;
        let start = now.max(self.next_free[disk]);
        let done = start + self.cmd_overhead + self.bandwidth.tx_time(len);
        self.next_free[disk] = done;
        self.read_bytes += len;
        self.seq += 1;
        self.pending.insert(
            (done, self.seq),
            GetTicket {
                token,
                file,
                offset,
                len,
                issued_at: now,
                done_at: done,
            },
        );
        done
    }

    fn poll_at(&self) -> Option<Nanos> {
        self.pending.keys().next().map(|&(t, _)| t)
    }

    fn drain_completed(&mut self, now: Nanos, out: &mut Vec<GetTicket>) {
        while let Some((&(t, s), _)) = self.pending.first_key_value() {
            if t > now {
                break;
            }
            out.push(self.pending.remove(&(t, s)).unwrap());
        }
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    fn catalog() -> Catalog {
        Catalog::new(1000, 300 * 1024, 4, 7)
    }

    #[test]
    fn cold_store_is_slower_than_hot() {
        let c = catalog();
        let mut cold = ColdObjectStore::new(ColdStoreConfig::default(), 1);
        let mut hot = NvmeFlatBackend::new(c);
        let t0 = Nanos::ZERO;
        let d_cold = cold.get_range(t0, FileId(1), 0, 300 * 1024, 1);
        let d_hot = hot.get_range(t0, FileId(1), 0, 300 * 1024, 1);
        assert!(
            d_cold.as_nanos() > 10 * d_hot.as_nanos(),
            "cold {d_cold:?} vs hot {d_hot:?}"
        );
    }

    #[test]
    fn cold_pipe_serializes_transfers() {
        let cfg = ColdStoreConfig {
            jitter_frac: 0.0,
            ..ColdStoreConfig::default()
        };
        let mut cold = ColdObjectStore::new(cfg, 1);
        let len = 300 * 1024u64;
        let d1 = cold.get_range(Nanos::ZERO, FileId(1), 0, len, 1);
        let d2 = cold.get_range(Nanos::ZERO, FileId(2), 0, len, 2);
        let xfer = cfg.bandwidth.tx_time(len);
        // Same latency (no jitter); the second transfer waits for the
        // first to release the pipe.
        assert_eq!(d2.as_nanos() - d1.as_nanos(), xfer.as_nanos());
    }

    #[test]
    fn cold_replay_is_bit_identical_and_costed() {
        let run = |seed: u64| {
            let mut cold = ColdObjectStore::new(ColdStoreConfig::default(), seed);
            let mut times = Vec::new();
            for i in 0..100u64 {
                times.push(
                    cold.get_range(Nanos::from_micros(i * 50), FileId(i), 0, 300 * 1024, i)
                        .as_nanos(),
                );
            }
            (times, cold.stats)
        };
        let (t1, s1) = run(9);
        let (t2, s2) = run(9);
        assert_eq!(t1, t2);
        assert_eq!(s1.cost_ucents, s2.cost_ucents);
        assert_eq!(s1.requests, 100);
        assert_eq!(s1.bytes, 100 * 300 * 1024);
        assert!(s1.cost_ucents >= 100 * ColdStoreConfig::default().cost_per_req_ucents);
        let (t3, _) = run(10);
        assert_ne!(t1, t3, "different seeds must jitter differently");
    }

    #[test]
    fn drain_respects_virtual_time() {
        let mut cold = ColdObjectStore::new(ColdStoreConfig::default(), 3);
        let done = cold.get_range(Nanos::ZERO, FileId(0), 0, 1024, 7);
        let mut out = Vec::new();
        cold.drain_completed(done - Nanos::from_nanos(1), &mut out);
        assert!(out.is_empty());
        assert_eq!(cold.poll_at(), Some(done));
        cold.drain_completed(done, &mut out);
        assert_eq!(out.len(), 1);
        assert_eq!(out[0].token, 7);
        assert_eq!(cold.poll_at(), None);
    }
}
