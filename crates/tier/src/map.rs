//! Compact per-object tier metadata.
//!
//! A million-object catalog cannot afford a `HashMap<FileId, _>` per
//! concern. [`TierMap`] keeps exactly three flat arrays — a hot-tier
//! residency bitmap, a promotion-queued bitmap, and one saturating
//! heat byte per object — ~1.13 MB per million objects, allocated
//! once at construction and never resized.

use dcn_store::FileId;

/// Residency + access-heat metadata for every catalog object.
pub struct TierMap {
    n: u64,
    /// Bit set ⇒ object is resident on the hot tier.
    hot: Vec<u64>,
    /// Bit set ⇒ object is already in the promotion queue (dedup).
    queued: Vec<u64>,
    /// Saturating access-heat counter, halved every epoch.
    heat: Vec<u8>,
    hot_count: u64,
}

impl TierMap {
    #[must_use]
    pub fn new(n: u64) -> Self {
        assert!(n > 0);
        let words = n.div_ceil(64) as usize;
        TierMap {
            n,
            hot: vec![0; words],
            queued: vec![0; words],
            heat: vec![0; n as usize],
            hot_count: 0,
        }
    }

    #[must_use]
    pub fn len(&self) -> u64 {
        self.n
    }

    #[must_use]
    pub fn is_empty(&self) -> bool {
        false
    }

    #[must_use]
    pub fn hot_count(&self) -> u64 {
        self.hot_count
    }

    #[inline]
    fn idx(f: FileId) -> (usize, u64) {
        ((f.0 / 64) as usize, 1u64 << (f.0 % 64))
    }

    #[must_use]
    pub fn is_hot(&self, f: FileId) -> bool {
        let (w, b) = Self::idx(f);
        self.hot[w] & b != 0
    }

    pub fn set_hot(&mut self, f: FileId) {
        let (w, b) = Self::idx(f);
        if self.hot[w] & b == 0 {
            self.hot[w] |= b;
            self.hot_count += 1;
        }
    }

    pub fn clear_hot(&mut self, f: FileId) {
        let (w, b) = Self::idx(f);
        if self.hot[w] & b != 0 {
            self.hot[w] &= !b;
            self.hot_count -= 1;
        }
    }

    #[must_use]
    pub fn is_queued(&self, f: FileId) -> bool {
        let (w, b) = Self::idx(f);
        self.queued[w] & b != 0
    }

    pub fn set_queued(&mut self, f: FileId) {
        let (w, b) = Self::idx(f);
        self.queued[w] |= b;
    }

    pub fn clear_queued(&mut self, f: FileId) {
        let (w, b) = Self::idx(f);
        self.queued[w] &= !b;
    }

    #[must_use]
    pub fn heat(&self, f: FileId) -> u8 {
        self.heat[f.0 as usize]
    }

    /// Record one access; returns the new heat.
    pub fn touch(&mut self, f: FileId, step: u8) -> u8 {
        let h = &mut self.heat[f.0 as usize];
        *h = h.saturating_add(step);
        *h
    }

    /// Epoch decay: halve every heat counter. O(n) over one byte per
    /// object — ~1 MB scanned per epoch for a million objects.
    pub fn decay(&mut self) {
        for h in &mut self.heat {
            *h >>= 1;
        }
    }

    /// Scan up to `limit` objects starting at `*cursor` (wrapping) for
    /// a hot, unqueued object with heat ≤ `threshold` — a demotion
    /// victim. Advances the cursor past the scanned range.
    pub fn find_cold_victim(&self, cursor: &mut u64, limit: u64, threshold: u8) -> Option<FileId> {
        for _ in 0..limit.min(self.n) {
            let f = FileId(*cursor);
            *cursor = (*cursor + 1) % self.n;
            if self.is_hot(f) && !self.is_queued(f) && self.heat(f) <= threshold {
                return Some(f);
            }
        }
        None
    }

    /// Approximate resident-set bytes of the metadata itself.
    #[must_use]
    pub fn metadata_bytes(&self) -> u64 {
        (self.hot.len() * 8 + self.queued.len() * 8 + self.heat.len()) as u64
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn residency_bitmap_round_trips() {
        let mut m = TierMap::new(1_000_000);
        assert_eq!(m.hot_count(), 0);
        m.set_hot(FileId(0));
        m.set_hot(FileId(999_999));
        m.set_hot(FileId(999_999)); // idempotent
        assert_eq!(m.hot_count(), 2);
        assert!(m.is_hot(FileId(0)) && m.is_hot(FileId(999_999)));
        assert!(!m.is_hot(FileId(63)));
        m.clear_hot(FileId(0));
        assert_eq!(m.hot_count(), 1);
        assert!(!m.is_hot(FileId(0)));
    }

    #[test]
    fn heat_saturates_and_decays() {
        let mut m = TierMap::new(64);
        for _ in 0..200 {
            m.touch(FileId(7), 3);
        }
        assert_eq!(m.heat(FileId(7)), u8::MAX);
        m.decay();
        assert_eq!(m.heat(FileId(7)), 127);
        assert_eq!(m.heat(FileId(8)), 0);
    }

    #[test]
    fn metadata_is_compact_at_a_million_objects() {
        let m = TierMap::new(1_000_000);
        // Hard bound from the issue: compact metadata, no per-object
        // allocation. 1 byte heat + 2 bits of bitmaps per object.
        assert!(m.metadata_bytes() < 2_000_000, "{}", m.metadata_bytes());
    }

    #[test]
    fn victim_scan_skips_queued_and_hot_enough() {
        let mut m = TierMap::new(128);
        m.set_hot(FileId(5));
        m.set_hot(FileId(6));
        m.set_hot(FileId(7));
        m.touch(FileId(5), 200); // too hot to demote
        m.set_queued(FileId(6)); // already migrating
        let mut cur = 0;
        assert_eq!(m.find_cold_victim(&mut cur, 128, 10), Some(FileId(7)));
        let mut cur2 = 8;
        // Wraps around the end of the id space.
        assert_eq!(m.find_cold_victim(&mut cur2, 128, 10), Some(FileId(7)));
    }
}
