//! # dcn-tier — million-object tiered storage
//!
//! The paper's catalog is benchmark-sized and entirely hot: every
//! chunk lives in the NVMe flat namespace. Real VoD fleets serve
//! million-title catalogs where a small hot set dominates traffic and
//! the long tail lives on cheaper, slower object storage. This crate
//! adds that split without giving up the reproduction's two
//! invariants — *virtual time* and *bit-identical replay*:
//!
//! * [`backend`] — the [`StorageBackend`] trait (byte-range
//!   `get_range`, modeled on the object-store local/S3 split) with two
//!   implementations: [`NvmeFlatBackend`] (the paper's flat namespace
//!   as the hot tier) and [`ColdObjectStore`] (configurable base
//!   latency + seeded jitter, a shared bandwidth pipe, and
//!   per-request/per-byte cost accounting).
//! * [`map`] — [`TierMap`]: compact residency + heat metadata, ~1.1 MB
//!   per million objects, no per-object allocation.
//! * [`engine`] — [`TierEngine`]: hysteretic promotion/demotion driven
//!   by access heat, with epoch decay and a bounded promotion
//!   bandwidth budget so migrations cannot starve serving.
//! * [`cache`] — [`HotChunkCache`]: a small LRU index over
//!   server-owned DMA slots; the cache *ablation* for the paper's
//!   "<10% buffer-cache hit ratio" claim (Atlas deleted the BC — this
//!   measures where a cache re-earns its memory bandwidth).
//!
//! Content never changes across tiers: every backend serves the bytes
//! of `Catalog::expected(file, offset)`, so promotion/demotion and
//! cache hits are invisible to the stream verifier.

pub mod backend;
pub mod cache;
pub mod engine;
pub mod map;

pub use backend::{ColdObjectStore, ColdStoreConfig, GetTicket, NvmeFlatBackend, StorageBackend};
pub use cache::{CacheConfig, CacheStats, HotChunkCache};
pub use engine::{Placement, TierConfig, TierEngine, TierStats, PROMO_TOKEN_BIT};
pub use map::TierMap;
