//! A small hot-chunk DMA cache — the buffer-cache *ablation*.
//!
//! Atlas deleted the OS buffer cache on the paper's evidence that BC
//! hit ratios are <10% for large catalogs. A tiered, Zipf-skewed
//! catalog changes the math: the popular head is small and re-read
//! constantly. This module is the index only — an LRU over fixed-size
//! slots identified by index. The server owns the slot memory (DMA
//! regions) and charges the memory system for every copy in and out,
//! so the ablation answers the paper's actual question: does the hit
//! ratio re-earn the extra DRAM bandwidth of filling the cache?
//!
//! Keys are `(file, file_offset)` of a record-aligned disk fetch; a
//! hit must match the stored length exactly (a different span is a
//! miss — chunk fetches are record-aligned, so in practice keys are
//! stable).

use dcn_simcore::Nanos;
use dcn_store::FileId;
use std::collections::HashMap;

/// Cache sizing. The default is deliberately small (64 MB ≈ one
/// P3700's worth of in-flight DMA) — the point of the ablation is the
/// marginal value of a *small* cache, not re-growing the kernel page
/// cache.
#[derive(Clone, Copy, Debug)]
pub struct CacheConfig {
    pub capacity_bytes: u64,
    /// Slot granularity; must be ≥ the largest disk fetch it will
    /// hold (Atlas fetches are one TLS record's plaintext).
    pub slot_bytes: u64,
    /// Only insert chunks whose object heat is at least this —
    /// filters one-hit wonders out of the cache.
    pub insert_min_heat: u8,
}

impl Default for CacheConfig {
    fn default() -> Self {
        CacheConfig {
            capacity_bytes: 64 << 20,
            slot_bytes: 16 * 1024,
            insert_min_heat: 6,
        }
    }
}

#[derive(Clone, Copy, Debug, Default)]
pub struct CacheStats {
    pub hits: u64,
    pub misses: u64,
    pub inserts: u64,
    pub evictions: u64,
}

#[derive(Clone, Copy)]
struct Slot {
    key: (u64, u64),
    len: u64,
    prev: u32,
    next: u32,
    used: bool,
}

const NIL: u32 = u32::MAX;

/// Fixed-slot LRU index. O(1) lookup/insert/evict; no allocation
/// after construction.
pub struct HotChunkCache {
    cfg: CacheConfig,
    map: HashMap<(u64, u64), u32>,
    slots: Vec<Slot>,
    free: Vec<u32>,
    /// LRU list: head = most recent, tail = eviction victim.
    head: u32,
    tail: u32,
    pub stats: CacheStats,
}

impl HotChunkCache {
    #[must_use]
    pub fn new(cfg: CacheConfig) -> Self {
        let n = (cfg.capacity_bytes / cfg.slot_bytes).max(1) as usize;
        HotChunkCache {
            cfg,
            map: HashMap::with_capacity(n * 2),
            slots: vec![
                Slot {
                    key: (0, 0),
                    len: 0,
                    prev: NIL,
                    next: NIL,
                    used: false,
                };
                n
            ],
            free: (0..n as u32).rev().collect(),
            head: NIL,
            tail: NIL,
            stats: CacheStats::default(),
        }
    }

    #[must_use]
    pub fn n_slots(&self) -> usize {
        self.slots.len()
    }

    #[must_use]
    pub fn slot_bytes(&self) -> u64 {
        self.cfg.slot_bytes
    }

    #[must_use]
    pub fn insert_min_heat(&self) -> u8 {
        self.cfg.insert_min_heat
    }

    fn unlink(&mut self, i: u32) {
        let (p, n) = (self.slots[i as usize].prev, self.slots[i as usize].next);
        if p == NIL {
            self.head = n;
        } else {
            self.slots[p as usize].next = n;
        }
        if n == NIL {
            self.tail = p;
        } else {
            self.slots[n as usize].prev = p;
        }
    }

    fn push_front(&mut self, i: u32) {
        self.slots[i as usize].prev = NIL;
        self.slots[i as usize].next = self.head;
        if self.head != NIL {
            self.slots[self.head as usize].prev = i;
        }
        self.head = i;
        if self.tail == NIL {
            self.tail = i;
        }
    }

    /// Look up `(file, offset, len)`; a hit returns the slot index and
    /// refreshes recency.
    pub fn lookup(&mut self, file: FileId, offset: u64, len: u64) -> Option<usize> {
        match self.map.get(&(file.0, offset)).copied() {
            Some(i) if self.slots[i as usize].len == len => {
                self.stats.hits += 1;
                self.unlink(i);
                self.push_front(i);
                Some(i as usize)
            }
            _ => {
                self.stats.misses += 1;
                None
            }
        }
    }

    /// Insert a chunk, evicting the LRU slot if full. Returns the slot
    /// index the server should copy the plaintext into. `len` must fit
    /// a slot. No-op (None) if the key is already cached.
    pub fn insert(&mut self, file: FileId, offset: u64, len: u64) -> Option<usize> {
        assert!(
            len <= self.cfg.slot_bytes,
            "{len} > slot {}",
            self.cfg.slot_bytes
        );
        if self.map.contains_key(&(file.0, offset)) {
            return None;
        }
        let i = match self.free.pop() {
            Some(i) => i,
            None => {
                let victim = self.tail;
                debug_assert_ne!(victim, NIL);
                self.unlink(victim);
                self.map.remove(&self.slots[victim as usize].key);
                self.stats.evictions += 1;
                victim
            }
        };
        let s = &mut self.slots[i as usize];
        s.key = (file.0, offset);
        s.len = len;
        s.used = true;
        self.map.insert((file.0, offset), i);
        self.push_front(i);
        self.stats.inserts += 1;
        Some(i as usize)
    }

    /// Drop every slot belonging to `file` (demotion/invalidation is
    /// not needed for the immutable catalog, but tests use it).
    pub fn invalidate_file(&mut self, file: FileId) {
        let keys: Vec<(u64, u64)> = self.map.keys().filter(|k| k.0 == file.0).copied().collect();
        for k in keys {
            let i = self.map.remove(&k).unwrap();
            self.unlink(i);
            self.slots[i as usize].used = false;
            self.free.push(i);
        }
    }

    #[must_use]
    pub fn hit_ratio(&self) -> f64 {
        let total = self.stats.hits + self.stats.misses;
        if total == 0 {
            return 0.0;
        }
        self.stats.hits as f64 / total as f64
    }

    /// DRAM traffic the cache itself cost so far, assuming every
    /// insert writes `len` bytes and every hit reads them back (the
    /// servers charge the memory system exactly; this is the summary
    /// view for reports).
    #[must_use]
    pub fn approx_dram_bytes(&self) -> u64 {
        (self.stats.inserts + self.stats.hits) * self.cfg.slot_bytes
    }

    /// Unused; kept for interface symmetry with the tier engine.
    #[must_use]
    pub fn poll_at(&self) -> Nanos {
        Nanos::MAX
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    fn cache(n_slots: u64) -> HotChunkCache {
        HotChunkCache::new(CacheConfig {
            capacity_bytes: n_slots * 1024,
            slot_bytes: 1024,
            insert_min_heat: 0,
        })
    }

    #[test]
    fn hit_after_insert_miss_before() {
        let mut c = cache(4);
        assert_eq!(c.lookup(FileId(1), 0, 1024), None);
        let slot = c.insert(FileId(1), 0, 1024).unwrap();
        assert_eq!(c.lookup(FileId(1), 0, 1024), Some(slot));
        // Length mismatch is a miss.
        assert_eq!(c.lookup(FileId(1), 0, 512), None);
        assert_eq!(c.stats.hits, 1);
        assert_eq!(c.stats.misses, 2);
    }

    #[test]
    fn lru_evicts_oldest_not_recently_used() {
        let mut c = cache(2);
        c.insert(FileId(1), 0, 1024);
        c.insert(FileId(2), 0, 1024);
        // Touch file 1 so file 2 is the LRU victim.
        assert!(c.lookup(FileId(1), 0, 1024).is_some());
        c.insert(FileId(3), 0, 1024);
        assert_eq!(c.stats.evictions, 1);
        assert!(c.lookup(FileId(1), 0, 1024).is_some());
        assert_eq!(c.lookup(FileId(2), 0, 1024), None);
        assert!(c.lookup(FileId(3), 0, 1024).is_some());
    }

    #[test]
    fn duplicate_insert_is_a_noop() {
        let mut c = cache(2);
        assert!(c.insert(FileId(1), 0, 1024).is_some());
        assert!(c.insert(FileId(1), 0, 1024).is_none());
        assert_eq!(c.stats.inserts, 1);
    }

    #[test]
    fn no_allocation_after_construction() {
        // All slots cycle through the free list / LRU without growing.
        let mut c = cache(8);
        for i in 0..1000u64 {
            c.insert(FileId(i), 0, 1024);
        }
        assert_eq!(c.n_slots(), 8);
        assert_eq!(c.stats.evictions, 1000 - 8);
    }
}
