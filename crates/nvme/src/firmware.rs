//! SSD firmware service model.
//!
//! Commands are split into NAND-page-sized **stripes**; a pool of
//! parallel flash channels services stripes with round-robin
//! interleaving across in-flight commands (stripe *j* of a command
//! belongs to wave *j / channels*, and channels serve lower waves
//! first — the fair scheduling real controllers implement so a small
//! read is not starved behind a large one). Each stripe takes
//! `stripe_overhead + bytes/channel_bw` with log-normal jitter, plus a
//! fixed per-command controller latency. A command completes when its
//! last stripe finishes — possibly out of submission order, which is
//! why NVMe matches completions by CID.
//!
//! One parameter set gives all three storage behaviours the paper
//! measures:
//!
//! * QD1 latency ≈ `cmd_overhead + stripe time` (~90 µs for 16 KiB,
//!   matching Fig 6's low-window latencies);
//! * saturation throughput ≈ `channels × stripe/stripe_time`
//!   (~25 Gb/s per drive, Fig 6's plateau);
//! * latency ∝ queue depth past saturation (Little's law — Fig 6's
//!   linear latency growth);
//! * intra-command parallelism, so one large read is striped across
//!   channels (why serial `pread` throughput grows with I/O size in
//!   Fig 8).

use crate::queue::{NvmeCommand, Opcode};
use dcn_simcore::{Nanos, SimRng};
use std::cmp::Reverse;
use std::collections::{BinaryHeap, HashMap};

/// Firmware/flash timing parameters.
#[derive(Clone, Copy, Debug)]
pub struct FirmwareParams {
    /// Parallel NAND channels (dies × planes the controller keeps in
    /// flight).
    pub channels: usize,
    /// Stripe size: data serviced per channel grant. Reads below this
    /// still occupy a full stripe slot (NAND page granularity).
    pub stripe_bytes: u64,
    /// Per-stripe channel occupancy overhead.
    pub stripe_overhead: Nanos,
    /// Channel streaming bandwidth in bytes/ns (e.g. 0.4 = 400 MB/s).
    pub channel_bytes_per_ns: f64,
    /// Fixed controller latency added to every command (fetch, LBA
    /// translation, completion posting).
    pub cmd_overhead: Nanos,
    /// Log-normal sigma applied to each stripe's service time.
    pub jitter_sigma: f64,
    /// Write-path bandwidth derating (P3700: ~1.9 GB/s writes vs
    /// ~2.8 GB/s reads → ≈ 0.65).
    pub write_derate: f64,
}

impl Default for FirmwareParams {
    fn default() -> Self {
        Self::p3700()
    }
}

impl FirmwareParams {
    /// Calibrated to the Intel P3700 800 GB used in the paper: ~25
    /// Gb/s sequential read, ~90–110 µs 16 KiB QD1 latency, ~450–800 K
    /// small-read IOPS. See EXPERIMENTS.md §Fig 6 for the validation.
    #[must_use]
    pub fn p3700() -> Self {
        FirmwareParams {
            channels: 25,
            stripe_bytes: 4096,
            stripe_overhead: Nanos::from_micros(20),
            channel_bytes_per_ns: 0.40,
            cmd_overhead: Nanos::from_micros(55),
            jitter_sigma: 0.18,
            write_derate: 0.65,
        }
    }

    /// Mean stripe service time for `bytes` of payload.
    #[must_use]
    pub fn stripe_time(&self, bytes: u64, opcode: Opcode) -> Nanos {
        let bw = match opcode {
            Opcode::Write => self.channel_bytes_per_ns * self.write_derate,
            _ => self.channel_bytes_per_ns,
        };
        // NAND page granularity: short reads still move a full page
        // off the die.
        let effective = bytes.max(self.stripe_bytes);
        self.stripe_overhead + Nanos::from_nanos((effective as f64 / bw) as u64)
    }

    /// Ideal read saturation throughput in Gb/s (diagnostic; used by
    /// tests to bound measurements).
    #[must_use]
    pub fn max_read_gbps(&self) -> f64 {
        let per = self.stripe_time(self.stripe_bytes, Opcode::Read);
        self.channels as f64 * self.stripe_bytes as f64 * 8.0 / per.as_secs_f64() / 1e9
    }
}

/// One command in flight.
struct InFlightCmd {
    qid: u16,
    cid: u16,
    sq_head_at_fetch: u16,
}

/// The firmware execution engine.
///
/// Stripes are committed to channels **eagerly at submission time**:
/// stripe *j* of a command goes to channel `(seq + j) % channels` and
/// starts when that channel frees up. This keeps the simulation's
/// event count at one per command (the completion) instead of one per
/// stripe — essential at tens of Gb/s — at the cost of one fairness
/// nuance: a command cannot preempt stripes of earlier commands that
/// have not physically started yet. Commands of similar size (the
/// streaming workload is nearly uniform 16 KiB/128 KiB reads) are
/// still interleaved fairly by the rotating base channel.
pub struct Firmware {
    params: FirmwareParams,
    /// `free_at` per channel.
    channels: Vec<Nanos>,
    cmds: HashMap<u64, InFlightCmd>,
    next_seq: u64,
    completions: BinaryHeap<Reverse<(Nanos, u64)>>, // (finish, cmd seq)
    rng: SimRng,
}

impl Firmware {
    #[must_use]
    pub fn new(params: FirmwareParams, seed: u64) -> Self {
        Firmware {
            channels: vec![Nanos::ZERO; params.channels],
            params,
            cmds: HashMap::new(),
            next_seq: 0,
            completions: BinaryHeap::new(),
            rng: SimRng::new(seed),
        }
    }

    #[must_use]
    pub fn params(&self) -> &FirmwareParams {
        &self.params
    }

    /// Accept a command at `now`: schedule its stripes and record the
    /// completion time.
    pub fn submit(&mut self, now: Nanos, qid: u16, sq_head: u16, cmd: &NvmeCommand) {
        self.submit_scaled(now, qid, sq_head, cmd, 1.0);
    }

    /// [`Firmware::submit`] with every stripe's service time stretched
    /// by `mult` — how the fault layer models internal firmware pauses
    /// (GC, thermal throttling) on individual commands. `mult = 1.0`
    /// is byte-identical to `submit`, including the jitter rng draws.
    pub fn submit_scaled(
        &mut self,
        now: Nanos,
        qid: u16,
        sq_head: u16,
        cmd: &NvmeCommand,
        mult: f64,
    ) {
        let seq = self.next_seq;
        self.next_seq += 1;
        let len = cmd.data_len().max(1);
        let nstripes = len.div_ceil(self.params.stripe_bytes).max(1) as u32;
        let arrival = now + self.params.cmd_overhead;
        let nch = self.channels.len() as u32;
        let base_ch = (seq as u32) % nch;
        let mut remaining = len;
        let mut last_finish = arrival;
        for j in 0..nstripes {
            let bytes = remaining.min(self.params.stripe_bytes);
            remaining -= bytes;
            let mean = self.params.stripe_time(bytes, cmd.opcode);
            let mut service = if self.params.jitter_sigma > 0.0 {
                mean.mul_f64(self.rng.log_normal(1.0, self.params.jitter_sigma))
            } else {
                mean
            };
            if mult != 1.0 {
                service = service.mul_f64(mult);
            }
            let ch = ((base_ch + j) % nch) as usize;
            let start = self.channels[ch].max(arrival);
            let end = start + service;
            self.channels[ch] = end;
            last_finish = last_finish.max(end);
        }
        self.cmds.insert(
            seq,
            InFlightCmd {
                qid,
                cid: cmd.cid,
                sq_head_at_fetch: sq_head,
            },
        );
        self.completions.push(Reverse((last_finish, seq)));
    }

    /// Next command-completion instant.
    #[must_use]
    pub fn poll_at(&self) -> Option<Nanos> {
        self.completions.peek().map(|Reverse((t, _))| *t)
    }

    /// Commands finished by `now`, in completion-time order (possibly
    /// out of submission order — real NVMe semantics). Each item is
    /// `(qid, cid, sq_head_at_fetch)`.
    pub fn drain_finished(&mut self, now: Nanos) -> Vec<(u16, u16, u16)> {
        let mut out = Vec::new();
        while let Some(Reverse((t, seq))) = self.completions.peek().copied() {
            if t > now {
                break;
            }
            self.completions.pop();
            let cmd = self.cmds.remove(&seq).expect("completion without command");
            out.push((cmd.qid, cmd.cid, cmd.sq_head_at_fetch));
        }
        out
    }

    /// Commands currently in service (diagnostics / tests).
    #[must_use]
    pub fn inflight_count(&self) -> usize {
        self.cmds.len()
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use dcn_mem::{PhysAddr, PhysRegion};

    fn read_cmd(cid: u16, bytes: u64) -> NvmeCommand {
        NvmeCommand {
            opcode: Opcode::Read,
            cid,
            nsid: 1,
            slba: 0,
            nlb: (bytes / 512) as u32,
            prp: vec![PhysRegion::new(PhysAddr(4096), bytes)],
        }
    }

    #[test]
    fn qd1_16k_latency_matches_p3700() {
        // Paper Fig 6: ~0.1 ms request latency at small windows.
        let mut fw = Firmware::new(
            FirmwareParams {
                jitter_sigma: 0.0,
                ..FirmwareParams::p3700()
            },
            1,
        );
        fw.submit(Nanos::ZERO, 1, 0, &read_cmd(1, 16384));
        let (done, t) = loop {
            let t = fw.poll_at().unwrap();
            let d = fw.drain_finished(t);
            if !d.is_empty() {
                break (d, t);
            }
        };
        assert_eq!(done.len(), 1);
        let us = t.as_micros_f64();
        assert!((60.0..160.0).contains(&us), "16KiB QD1 latency {us}us");
    }

    #[test]
    fn saturation_throughput_near_25gbps() {
        let p = FirmwareParams::p3700();
        let g = p.max_read_gbps();
        assert!((20.0..30.0).contains(&g), "max read {g} Gb/s");
    }

    fn completion_time(fw: &mut Firmware, horizon: Nanos) -> Vec<(Nanos, u16)> {
        let mut out = Vec::new();
        while let Some(t) = fw.poll_at() {
            if t > horizon {
                break;
            }
            for (_, cid, _) in fw.drain_finished(t) {
                out.push((t, cid));
            }
        }
        out
    }

    #[test]
    fn large_command_is_striped_not_serial() {
        // A 128 KiB read must complete far faster than 32 serial
        // stripes would take.
        let p = FirmwareParams {
            jitter_sigma: 0.0,
            ..FirmwareParams::p3700()
        };
        let serial = p.stripe_time(4096, Opcode::Read).as_nanos() * 32;
        let mut fw = Firmware::new(p, 1);
        fw.submit(Nanos::ZERO, 1, 0, &read_cmd(1, 131072));
        let done = completion_time(&mut fw, Nanos::from_secs(1));
        let t = done[0].0.as_nanos();
        assert!(t < serial / 4, "striped {t}ns vs serial {serial}ns");
    }

    #[test]
    fn out_of_order_completion() {
        // A 1 MiB read followed by several 4 KiB reads: the big
        // command finishes when its *slowest* stripe does, so with
        // realistic per-stripe jitter some small reads complete first
        // even though they were submitted later. NVMe explicitly
        // permits this; the host matches completions by CID.
        let mut fw = Firmware::new(FirmwareParams::p3700(), 5);
        fw.submit(Nanos::ZERO, 1, 0, &read_cmd(1, 1 << 20)); // 1 MiB
        for cid in 2..=10 {
            fw.submit(Nanos::ZERO, 1, 0, &read_cmd(cid, 4096));
        }
        let done = completion_time(&mut fw, Nanos::from_secs(1));
        assert_eq!(done.len(), 10);
        let big_pos = done.iter().position(|d| d.1 == 1).unwrap();
        assert!(big_pos > 0, "a later small read completed first: {done:?}");
    }

    #[test]
    fn drain_respects_now() {
        let mut fw = Firmware::new(FirmwareParams::p3700(), 1);
        fw.submit(Nanos::ZERO, 1, 0, &read_cmd(1, 16384));
        assert!(fw.drain_finished(Nanos::from_micros(1)).is_empty());
        assert_eq!(fw.inflight_count(), 1);
        assert_eq!(fw.drain_finished(Nanos::from_millis(10)).len(), 1);
        assert_eq!(fw.inflight_count(), 0);
    }

    #[test]
    fn writes_slower_than_reads() {
        let p = FirmwareParams::p3700();
        let r = p.stripe_time(4096, Opcode::Read);
        let w = p.stripe_time(4096, Opcode::Write);
        assert!(w > r);
    }

    #[test]
    fn throughput_rises_with_window_and_saturates() {
        // Mini Fig 6: measure completed bytes/time for windows 1..256.
        let mut last_gbps = 0.0;
        let mut results = Vec::new();
        for window in [1usize, 4, 16, 64, 256] {
            let mut fw = Firmware::new(FirmwareParams::p3700(), 42);
            let mut now = Nanos::ZERO;
            let mut next_cid = 0u16;
            let mut inflight = 0usize;
            let mut done_bytes = 0u64;
            let horizon = Nanos::from_millis(50);
            while now < horizon {
                while inflight < window {
                    fw.submit(now, 1, 0, &read_cmd(next_cid, 16384));
                    next_cid = next_cid.wrapping_add(1);
                    inflight += 1;
                }
                let Some(t) = fw.poll_at() else { break };
                now = t;
                let fin = fw.drain_finished(now);
                inflight -= fin.len();
                done_bytes += fin.len() as u64 * 16384;
            }
            let gbps = done_bytes as f64 * 8.0 / horizon.as_secs_f64() / 1e9;
            results.push((window, gbps));
            assert!(
                gbps >= last_gbps * 0.95,
                "throughput should not collapse: {results:?}"
            );
            last_gbps = gbps;
        }
        let max = results.last().unwrap().1;
        assert!(
            (18.0..30.0).contains(&max),
            "saturation {max} Gb/s: {results:?}"
        );
        assert!(
            results[0].1 < max * 0.2,
            "QD1 far below saturation: {results:?}"
        );
    }
}
