//! The NVMe device: queue pairs + firmware + DMA engine.
//!
//! The host interacts exactly the way a driver does (§3.1.1): write
//! SQEs into a submission queue, ring the SQ tail doorbell, poll (or
//! take an interrupt for) completion entries, ring the CQ head
//! doorbell. Data for READ commands is DMA-written into the PRP
//! pages — through the LLC model (DDIO) and, at full fidelity, into
//! simulated host memory byte-for-byte from the backing store.

use crate::backing::BlockBacking;
use crate::firmware::{Firmware, FirmwareParams};
use crate::queue::{CompletionEntry, NvmeCommand, NvmeStatus, Opcode, QueuePair};
use crate::LBA_SIZE;
use dcn_faults::NvmeFaultInjector;
use dcn_mem::{Agent, HostMem, MemSystem};
use dcn_simcore::Nanos;

pub use dcn_mem::Fidelity;

/// Device geometry and behaviour.
#[derive(Clone, Copy, Debug)]
pub struct NvmeConfig {
    /// Number of I/O queue pairs (NVMe supports many; one per core in
    /// the paper's share-free design).
    pub num_qpairs: u16,
    /// Slots per SQ/CQ.
    pub queue_depth: u16,
    /// Namespace capacity in LBAs.
    pub ns_lbas: u64,
    pub firmware: FirmwareParams,
    /// Interrupt moderation: a completion raises an interrupt only if
    /// none was raised within this window (0 = every completion).
    pub irq_coalesce: Nanos,
    /// Delay from completion to interrupt delivery.
    pub irq_latency: Nanos,
    pub fidelity: Fidelity,
}

impl Default for NvmeConfig {
    fn default() -> Self {
        NvmeConfig {
            num_qpairs: 8,
            queue_depth: 1024,
            // 800 GB at 512 B LBAs.
            ns_lbas: 800_000_000_000 / LBA_SIZE,
            firmware: FirmwareParams::p3700(),
            irq_coalesce: Nanos::from_micros(20),
            irq_latency: Nanos::from_micros(6),
            fidelity: Fidelity::Full,
        }
    }
}

/// A simulated NVMe SSD.
pub struct NvmeDevice {
    cfg: NvmeConfig,
    qpairs: Vec<QueuePair>,
    firmware: Firmware,
    backing: Box<dyn BlockBacking>,
    /// Commands accepted but not yet completed, needed to perform the
    /// DMA at completion time: (qid, cid) → command, plus whether the
    /// fault layer doomed this command to a media error (decided at
    /// doorbell time so firmware reordering can't change the
    /// schedule).
    pending: Vec<(u16, NvmeCommand, bool)>,
    /// Seeded fault decisions (media errors, latency spikes). `None`
    /// in every scenario that doesn't inject faults.
    faults: Option<NvmeFaultInjector>,
    last_irq: Nanos,
    irq_pending_at: Option<Nanos>,
    /// Lifetime stats.
    pub completed_reads: u64,
    pub completed_writes: u64,
    pub read_bytes: u64,
    pub write_bytes: u64,
}

impl NvmeDevice {
    pub fn new(cfg: NvmeConfig, backing: Box<dyn BlockBacking>, seed: u64) -> Self {
        NvmeDevice {
            qpairs: (0..cfg.num_qpairs)
                .map(|q| QueuePair::new(q, cfg.queue_depth))
                .collect(),
            firmware: Firmware::new(cfg.firmware, seed),
            backing,
            pending: Vec::new(),
            faults: None,
            cfg,
            last_irq: Nanos::ZERO,
            irq_pending_at: None,
            completed_reads: 0,
            completed_writes: 0,
            read_bytes: 0,
            write_bytes: 0,
        }
    }

    #[must_use]
    pub fn config(&self) -> &NvmeConfig {
        &self.cfg
    }

    /// Arm seeded fault injection on this device. Inactive configs
    /// are dropped so the happy path never consults the rng.
    pub fn set_faults(&mut self, cfg: dcn_faults::NvmeFaults, seed: u64) {
        let inj = NvmeFaultInjector::new(cfg, seed);
        self.faults = if inj.is_active() { Some(inj) } else { None };
    }

    /// Fault counters (media errors fired, latency spikes), if armed.
    #[must_use]
    pub fn fault_injector(&self) -> Option<&NvmeFaultInjector> {
        self.faults.as_ref()
    }

    /// Host access to a queue pair (the driver owns these
    /// structurally; the device borrows them during `advance`).
    pub fn qpair(&mut self, qid: u16) -> &mut QueuePair {
        &mut self.qpairs[usize::from(qid)]
    }

    /// Ring the SQ tail doorbell of `qid`: the device fetches newly
    /// submitted commands, validates them, and hands them to the
    /// firmware. Invalid commands complete immediately with an error
    /// status.
    pub fn ring_sq_doorbell(&mut self, now: Nanos, qid: u16) {
        let qp = &mut self.qpairs[usize::from(qid)];
        let tail = qp.sq_tail();
        let cmds = qp.device_fetch(tail);
        let sq_head = qp.sq_head;
        for cmd in cmds {
            let status = self.validate(&cmd);
            if status != NvmeStatus::Success {
                self.qpairs[usize::from(qid)].cq_post(CompletionEntry {
                    cid: cmd.cid,
                    status,
                    sq_head,
                });
                continue;
            }
            let (fail, mult) = match &mut self.faults {
                Some(inj) => {
                    let fail = cmd.opcode == Opcode::Read && inj.read_error();
                    (fail, inj.latency_mult())
                }
                None => (false, 1.0),
            };
            self.firmware.submit_scaled(now, qid, sq_head, &cmd, mult);
            self.pending.push((qid, cmd, fail));
        }
    }

    fn validate(&self, cmd: &NvmeCommand) -> NvmeStatus {
        let end = cmd.slba + u64::from(cmd.nlb);
        if cmd.nsid == 0 || cmd.nsid > 4 {
            return NvmeStatus::InvalidField;
        }
        match cmd.opcode {
            Opcode::Flush => NvmeStatus::Success,
            Opcode::Read | Opcode::Write => {
                if cmd.nlb == 0 || cmd.prp.is_empty() {
                    NvmeStatus::InvalidField
                } else if end > self.cfg.ns_lbas {
                    NvmeStatus::LbaOutOfRange
                } else if cmd.data_len() != u64::from(cmd.nlb) * LBA_SIZE {
                    NvmeStatus::InvalidField
                } else {
                    NvmeStatus::Success
                }
            }
        }
    }

    /// Next instant the device has work to expose (a completion to
    /// post).
    #[must_use]
    pub fn poll_at(&self) -> Option<Nanos> {
        self.firmware.poll_at()
    }

    /// Advance device time: post completions for everything the
    /// firmware finished by `now`, performing the data DMA. Returns
    /// the number of completions posted.
    pub fn advance(&mut self, now: Nanos, mem: &mut MemSystem, host: &mut HostMem) -> usize {
        let finished = self.firmware.drain_finished(now);
        let n = finished.len();
        for (qid, cid, sq_head) in finished {
            let idx = self
                .pending
                .iter()
                .position(|(q, c, _)| *q == qid && c.cid == cid)
                .expect("completion for unknown command");
            let (_, cmd, failed) = self.pending.swap_remove(idx);
            if failed {
                // Media error: no data transfer happened; the host
                // buffer is untouched and must be treated as garbage.
                self.qpairs[usize::from(qid)].cq_post(CompletionEntry {
                    cid,
                    status: NvmeStatus::MediaError,
                    sq_head,
                });
                if now.saturating_sub(self.last_irq) >= self.cfg.irq_coalesce {
                    self.last_irq = now;
                    let at = now + self.cfg.irq_latency;
                    self.irq_pending_at = Some(match self.irq_pending_at {
                        Some(t) => t.min(at),
                        None => at,
                    });
                }
                continue;
            }
            self.dma(now, &cmd, mem, host);
            match cmd.opcode {
                Opcode::Read => {
                    self.completed_reads += 1;
                    self.read_bytes += cmd.data_len();
                }
                Opcode::Write => {
                    self.completed_writes += 1;
                    self.write_bytes += cmd.data_len();
                }
                Opcode::Flush => {}
            }
            self.qpairs[usize::from(qid)].cq_post(CompletionEntry {
                cid,
                status: NvmeStatus::Success,
                sq_head,
            });
            // Interrupt moderation.
            if now.saturating_sub(self.last_irq) >= self.cfg.irq_coalesce {
                self.last_irq = now;
                let at = now + self.cfg.irq_latency;
                self.irq_pending_at = Some(match self.irq_pending_at {
                    Some(t) => t.min(at),
                    None => at,
                });
            }
        }
        n
    }

    fn dma(&mut self, now: Nanos, cmd: &NvmeCommand, mem: &mut MemSystem, host: &mut HostMem) {
        match cmd.opcode {
            Opcode::Read => {
                let mut off = 0u64;
                for region in &cmd.prp {
                    mem.dma_write(now, Agent::DiskDma, *region);
                    if self.cfg.fidelity == Fidelity::Full {
                        let mut buf = vec![0u8; region.len as usize];
                        self.backing.read(cmd.nsid, cmd.slba, off, &mut buf);
                        host.write(region.addr, &buf);
                    }
                    off += region.len;
                }
            }
            Opcode::Write => {
                let mut off = 0u64;
                for region in &cmd.prp {
                    mem.dma_read(now, Agent::DiskDma, *region);
                    if self.cfg.fidelity == Fidelity::Full {
                        let buf = host.read_region(*region);
                        self.backing.write(cmd.nsid, cmd.slba, off, &buf);
                    }
                    off += region.len;
                }
            }
            Opcode::Flush => {}
        }
    }

    /// Take a pending interrupt if one is due at `now` (interrupt-
    /// driven drivers: the in-kernel stack and the aio(4) baseline).
    pub fn take_interrupt(&mut self, now: Nanos) -> bool {
        match self.irq_pending_at {
            Some(t) if t <= now => {
                self.irq_pending_at = None;
                true
            }
            _ => false,
        }
    }

    /// When the pending interrupt (if any) fires.
    #[must_use]
    pub fn irq_at(&self) -> Option<Nanos> {
        self.irq_pending_at
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::backing::{SparseBacking, SyntheticBacking};
    use dcn_mem::{CostParams, LlcConfig, PhysAlloc, PhysRegion};

    fn mem() -> (MemSystem, HostMem, PhysAlloc) {
        (
            MemSystem::new(
                LlcConfig::xeon_e5_2667v3(),
                CostParams::default(),
                Nanos::from_millis(1),
            ),
            HostMem::new(),
            PhysAlloc::new(),
        )
    }

    fn dev() -> NvmeDevice {
        NvmeDevice::new(NvmeConfig::default(), Box::new(SyntheticBacking::new(7)), 1)
    }

    fn read_cmd(cid: u16, slba: u64, bytes: u64, buf: PhysRegion) -> NvmeCommand {
        // Split into 4 KiB PRP pages as a driver would.
        let mut prp = Vec::new();
        let mut off = 0;
        while off < bytes {
            let n = (bytes - off).min(4096);
            prp.push(buf.slice(off, n));
            off += n;
        }
        NvmeCommand {
            opcode: Opcode::Read,
            cid,
            nsid: 1,
            slba,
            nlb: (bytes / LBA_SIZE) as u32,
            prp,
        }
    }

    fn run_to_completion(d: &mut NvmeDevice, mem: &mut MemSystem, host: &mut HostMem) -> usize {
        let mut n = 0;
        while let Some(t) = d.poll_at() {
            n += d.advance(t, mem, host);
        }
        n
    }

    #[test]
    fn read_delivers_correct_bytes() {
        let (mut m, mut h, mut pa) = mem();
        let mut d = dev();
        let buf = pa.alloc(16384);
        d.qpair(0).sq_push(read_cmd(1, 100, 16384, buf));
        d.ring_sq_doorbell(Nanos::ZERO, 0);
        assert_eq!(run_to_completion(&mut d, &mut m, &mut h), 1);
        let entries = d.qpair(0).cq_consume(16);
        assert_eq!(entries.len(), 1);
        assert_eq!(entries[0].status, NvmeStatus::Success);
        // Verify against the backing's expected content.
        let got = h.read_region(buf);
        let mut want = vec![0u8; 16384];
        SyntheticBacking::new(7).expected(1, 100 * LBA_SIZE, &mut want);
        assert_eq!(got, want);
    }

    #[test]
    fn out_of_range_read_errors() {
        let (_m, _h, mut pa) = mem();
        let mut d = dev();
        let buf = pa.alloc(4096);
        let lbas = d.config().ns_lbas;
        d.qpair(0).sq_push(read_cmd(1, lbas - 1, 4096, buf));
        d.ring_sq_doorbell(Nanos::ZERO, 0);
        let entries = d.qpair(0).cq_consume(16);
        assert_eq!(entries.len(), 1, "error completes immediately");
        assert_eq!(entries[0].status, NvmeStatus::LbaOutOfRange);
    }

    #[test]
    fn malformed_prp_rejected() {
        let (_m, _h, mut pa) = mem();
        let mut d = dev();
        let buf = pa.alloc(2048); // half the data the nlb claims
        let cmd = NvmeCommand {
            opcode: Opcode::Read,
            cid: 9,
            nsid: 1,
            slba: 0,
            nlb: 8,
            prp: vec![buf],
        };
        d.qpair(0).sq_push(cmd);
        d.ring_sq_doorbell(Nanos::ZERO, 0);
        let entries = d.qpair(0).cq_consume(16);
        assert_eq!(entries[0].status, NvmeStatus::InvalidField);
    }

    #[test]
    fn write_then_read_round_trip() {
        let (mut m, mut h, mut pa) = mem();
        let mut d = NvmeDevice::new(NvmeConfig::default(), Box::new(SparseBacking::new(7)), 1);
        let wbuf = pa.alloc(4096);
        let payload: Vec<u8> = (0..4096u32).map(|i| (i * 7 % 256) as u8).collect();
        h.write(wbuf.addr, &payload);
        let wcmd = NvmeCommand {
            opcode: Opcode::Write,
            cid: 1,
            nsid: 1,
            slba: 64,
            nlb: 8,
            prp: vec![wbuf],
        };
        d.qpair(0).sq_push(wcmd);
        d.ring_sq_doorbell(Nanos::ZERO, 0);
        run_to_completion(&mut d, &mut m, &mut h);
        assert_eq!(d.qpair(0).cq_consume(16).len(), 1);

        let rbuf = pa.alloc(4096);
        d.qpair(0).sq_push(read_cmd(2, 64, 4096, rbuf));
        d.ring_sq_doorbell(Nanos::from_millis(1), 0);
        run_to_completion(&mut d, &mut m, &mut h);
        assert_eq!(d.qpair(0).cq_consume(16).len(), 1);
        assert_eq!(h.read_region(rbuf), payload);
    }

    #[test]
    fn dma_lands_in_llc() {
        let (mut m, mut h, mut pa) = mem();
        let mut d = dev();
        let buf = pa.alloc(16384);
        d.qpair(0).sq_push(read_cmd(1, 0, 16384, buf));
        d.ring_sq_doorbell(Nanos::ZERO, 0);
        run_to_completion(&mut d, &mut m, &mut h);
        // Immediately DMA-able to a NIC without touching DRAM.
        let t = Nanos::from_millis(1);
        let out = m.dma_read(t, Agent::NicDma, buf);
        assert_eq!(
            out.dram_read_bytes, 0,
            "DDIO must keep fresh disk data in LLC"
        );
    }

    #[test]
    fn interrupts_fire_and_coalesce() {
        let (mut m, mut h, mut pa) = mem();
        let mut d = dev();
        let buf = pa.alloc(4096);
        d.qpair(0).sq_push(read_cmd(1, 0, 4096, buf));
        d.ring_sq_doorbell(Nanos::ZERO, 0);
        let t = loop {
            let t = d.poll_at().expect("completion pending");
            if d.advance(t, &mut m, &mut h) > 0 {
                break t;
            }
        };
        let irq_at = d.irq_at().expect("interrupt scheduled");
        assert!(irq_at > t);
        assert!(!d.take_interrupt(t), "not before latency elapses");
        assert!(d.take_interrupt(irq_at));
        assert!(!d.take_interrupt(irq_at), "taken once");
    }

    #[test]
    fn injected_media_errors_suppress_dma_and_post_error_status() {
        let (mut m, mut h, mut pa) = mem();
        let mut d = dev();
        d.set_faults(
            dcn_faults::NvmeFaults {
                read_error_p: 0.2,
                ..dcn_faults::NvmeFaults::default()
            },
            77,
        );
        let n = 128u16;
        let bufs: Vec<PhysRegion> = (0..n).map(|_| pa.alloc(4096)).collect();
        for (i, buf) in bufs.iter().enumerate() {
            assert!(d
                .qpair(0)
                .sq_push(read_cmd(i as u16, i as u64 * 8, 4096, *buf)));
        }
        d.ring_sq_doorbell(Nanos::ZERO, 0);
        run_to_completion(&mut d, &mut m, &mut h);
        let entries = d.qpair(0).cq_consume(usize::from(n) + 1);
        assert_eq!(entries.len(), usize::from(n));
        let errors = entries
            .iter()
            .filter(|e| e.status == NvmeStatus::MediaError)
            .count();
        assert!(errors > 5 && errors < 60, "errors={errors}");
        assert_eq!(
            errors as u64,
            d.fault_injector().unwrap().read_errors,
            "counter tracks fired errors"
        );
        // Failed reads transferred nothing; successful ones match the
        // backing store byte-for-byte.
        let mut by_cid: Vec<NvmeStatus> = vec![NvmeStatus::Success; usize::from(n)];
        for e in &entries {
            by_cid[usize::from(e.cid)] = e.status;
        }
        for (i, buf) in bufs.iter().enumerate() {
            let got = h.read_region(*buf);
            let mut want = vec![0u8; 4096];
            SyntheticBacking::new(7).expected(1, i as u64 * 8 * LBA_SIZE, &mut want);
            match by_cid[i] {
                NvmeStatus::Success => assert_eq!(got, want, "cid {i}"),
                NvmeStatus::MediaError => {
                    assert_eq!(got, vec![0u8; 4096], "cid {i}: DMA must be suppressed")
                }
                s => panic!("unexpected status {s:?}"),
            }
        }
        // Stats only count successful transfers.
        assert_eq!(d.completed_reads, (usize::from(n) - errors) as u64);
    }

    #[test]
    fn latency_spikes_stretch_individual_commands() {
        let (mut m, mut h, mut pa) = mem();
        let spiky = |p: f64, seed: u64| {
            let mut d = NvmeDevice::new(
                NvmeConfig {
                    firmware: FirmwareParams {
                        jitter_sigma: 0.0,
                        ..FirmwareParams::p3700()
                    },
                    ..NvmeConfig::default()
                },
                Box::new(SyntheticBacking::new(7)),
                1,
            );
            d.set_faults(
                dcn_faults::NvmeFaults {
                    latency_spike_p: p,
                    latency_spike_mult: 50.0,
                    ..dcn_faults::NvmeFaults::default()
                },
                seed,
            );
            d
        };
        // Baseline: QD1 16 KiB completion time without spikes.
        let mut d0 = spiky(0.0, 1);
        let b = pa.alloc(16384);
        d0.qpair(0).sq_push(read_cmd(1, 0, 16384, b));
        d0.ring_sq_doorbell(Nanos::ZERO, 0);
        let base = d0.poll_at().unwrap();
        // With spike_p = 1.0 every command is stretched.
        let mut d1 = spiky(1.0, 1);
        let b1 = pa.alloc(16384);
        d1.qpair(0).sq_push(read_cmd(1, 0, 16384, b1));
        d1.ring_sq_doorbell(Nanos::ZERO, 0);
        let spiked = d1.poll_at().unwrap();
        assert!(
            spiked.as_nanos() > base.as_nanos() * 10,
            "spiked {spiked:?} vs base {base:?}"
        );
        run_to_completion(&mut d1, &mut m, &mut h);
        assert_eq!(d1.fault_injector().unwrap().latency_spikes, 1);
    }

    #[test]
    fn many_outstanding_commands_complete() {
        let (mut m, mut h, mut pa) = mem();
        let mut d = dev();
        let n = 64;
        for i in 0..n {
            let buf = pa.alloc(16384);
            assert!(d
                .qpair(0)
                .sq_push(read_cmd(i, u64::from(i) * 32, 16384, buf)));
        }
        d.ring_sq_doorbell(Nanos::ZERO, 0);
        assert_eq!(run_to_completion(&mut d, &mut m, &mut h), usize::from(n));
        assert_eq!(
            d.qpair(0).cq_consume(usize::from(n) + 1).len(),
            usize::from(n)
        );
        assert_eq!(d.completed_reads, u64::from(n));
        assert_eq!(d.read_bytes, u64::from(n) * 16384);
    }
}
