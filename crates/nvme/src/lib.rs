//! # dcn-nvme — NVMe device model
//!
//! A behavioural model of a PCIe NVMe SSD (calibrated to the Intel
//! P3700 the paper evaluates on) that exposes the real NVMe host
//! interface: submission/completion queue pairs in host memory,
//! doorbell registers, PRP-list data pointers, command identifiers,
//! and out-of-order completion. The diskmap layer above this crate is
//! a faithful reimplementation of the paper's driver; this crate is
//! the "hardware".
//!
//! Timing comes from a firmware service model ([`firmware`]): each
//! command is split into NAND-page-sized stripes that are serviced by
//! a pool of parallel channels with log-normal jitter. That single
//! mechanism reproduces all three storage behaviours the paper
//! measures: the latency/throughput/window relationship (Fig 6), the
//! throughput-vs-I/O-size curve (Fig 8), and the small-read latency
//! distribution (Fig 9).

pub mod backing;
pub mod device;
pub mod firmware;
pub mod queue;

pub use backing::{BlockBacking, SparseBacking, SyntheticBacking};
pub use device::{Fidelity, NvmeConfig, NvmeDevice};
pub use firmware::FirmwareParams;
pub use queue::{CompletionEntry, NvmeCommand, NvmeStatus, Opcode, QueuePair};

/// NVMe logical block size used throughout the reproduction (the
/// paper's P3700s are formatted with 512-byte LBAs).
pub const LBA_SIZE: u64 = 512;
