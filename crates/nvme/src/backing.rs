//! Block backing stores: where the device's LBAs get their bytes.
//!
//! The paper's catalog is ~3 TB of 300 KB video chunks per server —
//! far too large to materialize. [`SyntheticBacking`] generates the
//! byte at any (namespace, LBA, offset) from a positional PRF, so any
//! read is reproducible and any client can verify content
//! independently. [`SparseBacking`] overlays real written data for
//! tests that exercise the write path.

use crate::LBA_SIZE;
use dcn_simcore::prf_bytes;
use std::collections::HashMap;

/// Source of bytes for device reads / sink for writes.
pub trait BlockBacking {
    /// Fill `out` with the content at byte offset `lba * LBA_SIZE +
    /// offset` of namespace `nsid`.
    fn read(&self, nsid: u32, lba: u64, offset: u64, out: &mut [u8]);
    /// Store `data` at the given location.
    fn write(&mut self, nsid: u32, lba: u64, offset: u64, data: &[u8]);
}

/// Infinite deterministic content: byte `i` of namespace `n` is
/// `PRF(seed ^ n)[i]`. Writes are rejected (the streaming workload is
/// read-only; use [`SparseBacking`] when writes matter).
pub struct SyntheticBacking {
    seed: u64,
}

impl SyntheticBacking {
    #[must_use]
    pub fn new(seed: u64) -> Self {
        SyntheticBacking { seed }
    }

    fn ns_seed(&self, nsid: u32) -> u64 {
        self.seed ^ (u64::from(nsid) << 32) ^ 0xD15C_0000_0000_0000
    }

    /// The expected content at a location — used by clients to verify
    /// received data end to end.
    pub fn expected(&self, nsid: u32, byte_offset: u64, out: &mut [u8]) {
        prf_bytes(self.ns_seed(nsid), byte_offset, out);
    }
}

impl BlockBacking for SyntheticBacking {
    fn read(&self, nsid: u32, lba: u64, offset: u64, out: &mut [u8]) {
        prf_bytes(self.ns_seed(nsid), lba * LBA_SIZE + offset, out);
    }

    fn write(&mut self, _nsid: u32, _lba: u64, _offset: u64, _data: &[u8]) {
        panic!("SyntheticBacking is read-only; use SparseBacking for write tests");
    }
}

/// Synthetic base content with written data overlaid sparsely
/// (LBA-granular).
pub struct SparseBacking {
    base: SyntheticBacking,
    written: HashMap<(u32, u64), Box<[u8]>>,
}

impl SparseBacking {
    #[must_use]
    pub fn new(seed: u64) -> Self {
        SparseBacking {
            base: SyntheticBacking::new(seed),
            written: HashMap::new(),
        }
    }

    #[must_use]
    pub fn written_lbas(&self) -> usize {
        self.written.len()
    }
}

impl BlockBacking for SparseBacking {
    fn read(&self, nsid: u32, lba: u64, offset: u64, out: &mut [u8]) {
        // Serve per-LBA, switching between overlay and base.
        let mut pos = lba * LBA_SIZE + offset;
        let mut done = 0usize;
        while done < out.len() {
            let cur_lba = pos / LBA_SIZE;
            let in_lba = (pos % LBA_SIZE) as usize;
            let n = (LBA_SIZE as usize - in_lba).min(out.len() - done);
            match self.written.get(&(nsid, cur_lba)) {
                Some(block) => out[done..done + n].copy_from_slice(&block[in_lba..in_lba + n]),
                None => self
                    .base
                    .read(nsid, cur_lba, in_lba as u64, &mut out[done..done + n]),
            }
            done += n;
            pos += n as u64;
        }
    }

    fn write(&mut self, nsid: u32, lba: u64, offset: u64, data: &[u8]) {
        let mut pos = lba * LBA_SIZE + offset;
        let mut done = 0usize;
        while done < data.len() {
            let cur_lba = pos / LBA_SIZE;
            let in_lba = (pos % LBA_SIZE) as usize;
            let n = (LBA_SIZE as usize - in_lba).min(data.len() - done);
            let block = self.written.entry((nsid, cur_lba)).or_insert_with(|| {
                // Read-modify-write against base content.
                let mut b = vec![0u8; LBA_SIZE as usize].into_boxed_slice();
                self.base.read(nsid, cur_lba, 0, &mut b);
                b
            });
            block[in_lba..in_lba + n].copy_from_slice(&data[done..done + n]);
            done += n;
            pos += n as u64;
        }
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn synthetic_reads_are_positional() {
        let b = SyntheticBacking::new(7);
        let mut whole = vec![0u8; 2048];
        b.read(1, 0, 0, &mut whole);
        // Read LBA 2 directly and compare to the slice.
        let mut part = vec![0u8; 512];
        b.read(1, 2, 0, &mut part);
        assert_eq!(&whole[1024..1536], &part[..]);
        // Sub-LBA offsets too.
        let mut tail = vec![0u8; 100];
        b.read(1, 2, 412, &mut tail);
        assert_eq!(&whole[1436..1536], &tail[..]);
    }

    #[test]
    fn namespaces_have_distinct_content() {
        let b = SyntheticBacking::new(7);
        let mut a = vec![0u8; 64];
        let mut c = vec![0u8; 64];
        b.read(1, 0, 0, &mut a);
        b.read(2, 0, 0, &mut c);
        assert_ne!(a, c);
    }

    #[test]
    fn sparse_overlay_read_back() {
        let mut s = SparseBacking::new(7);
        let data: Vec<u8> = (0..1000u32).map(|i| (i % 256) as u8).collect();
        // Unaligned write spanning 3 LBAs.
        s.write(1, 4, 200, &data);
        let mut back = vec![0u8; 1000];
        s.read(1, 4, 200, &mut back);
        assert_eq!(back, data);
        assert_eq!(s.written_lbas(), 3);
        // Bytes before the write keep base content.
        let base = SyntheticBacking::new(7);
        let mut got = vec![0u8; 200];
        let mut want = vec![0u8; 200];
        s.read(1, 4, 0, &mut got);
        base.read(1, 4, 0, &mut want);
        assert_eq!(got, want);
    }

    #[test]
    fn expected_matches_read() {
        let b = SyntheticBacking::new(9);
        let mut via_read = vec![0u8; 300];
        b.read(3, 10, 17, &mut via_read);
        let mut via_expected = vec![0u8; 300];
        b.expected(3, 10 * LBA_SIZE + 17, &mut via_expected);
        assert_eq!(via_read, via_expected);
    }
}
