//! NVMe queue-pair data structures: submission queues, completion
//! queues, and doorbells, mirroring the NVMe 1.2 host interface the
//! paper's diskmap is built against (§3.1.1).

use dcn_mem::PhysRegion;

/// NVMe I/O command opcodes (the subset a streaming server uses).
#[derive(Clone, Copy, PartialEq, Eq, Debug)]
pub enum Opcode {
    Read,
    Write,
    Flush,
}

/// Completion status codes.
#[derive(Clone, Copy, PartialEq, Eq, Debug)]
pub enum NvmeStatus {
    Success,
    /// LBA out of namespace range.
    LbaOutOfRange,
    /// Malformed command (zero-length data pointer, bad opcode...).
    InvalidField,
    /// Unrecoverable media read error (NVMe 1.2 §4.6.1 status 0x281):
    /// the command's data transfer did not happen. Injected by the
    /// fault layer; the host must treat the buffer as undefined.
    MediaError,
}

/// One submission-queue entry. Real SQEs carry PRP1/PRP2 with
/// page-list indirection; the model carries the resolved page list —
/// the diskmap layer builds it exactly the way a PRP list is built
/// (first entry may be unaligned, the rest are page-aligned).
#[derive(Clone, Debug)]
pub struct NvmeCommand {
    pub opcode: Opcode,
    /// Command identifier: echoed in the completion entry so the host
    /// can match completions to requests (out-of-order completion).
    pub cid: u16,
    /// Namespace id (1-based, as in NVMe).
    pub nsid: u32,
    /// Starting logical block address.
    pub slba: u64,
    /// Number of logical blocks (1-based count, unlike the wire
    /// format's 0-based field — kept human-safe here).
    pub nlb: u32,
    /// Resolved data pages (PRP list equivalent).
    pub prp: Vec<PhysRegion>,
}

impl NvmeCommand {
    /// Total data length described by the PRP list.
    #[must_use]
    pub fn data_len(&self) -> u64 {
        self.prp.iter().map(|r| r.len).sum()
    }
}

/// One completion-queue entry.
#[derive(Clone, Copy, Debug)]
pub struct CompletionEntry {
    pub cid: u16,
    pub status: NvmeStatus,
    /// SQ head pointer at completion time (flow control, as in NVMe).
    pub sq_head: u16,
}

/// A submission/completion queue pair in host memory.
///
/// The host writes commands into `sq` slots and rings the tail
/// doorbell; the device consumes them and posts completions into
/// `cq`, which the host consumes and acknowledges via the CQ head
/// doorbell.
pub struct QueuePair {
    pub qid: u16,
    depth: u16,
    sq: Vec<Option<NvmeCommand>>,
    pub(crate) sq_head: u16,
    sq_tail_db: u16,
    cq: Vec<Option<CompletionEntry>>,
    cq_tail: u16,
    cq_head_db: u16,
}

impl QueuePair {
    #[must_use]
    pub fn new(qid: u16, depth: u16) -> Self {
        assert!(depth >= 2, "NVMe queues need at least 2 entries");
        QueuePair {
            qid,
            depth,
            sq: (0..depth).map(|_| None).collect(),
            sq_head: 0,
            sq_tail_db: 0,
            cq: (0..depth).map(|_| None).collect(),
            cq_tail: 0,
            cq_head_db: 0,
        }
    }

    #[must_use]
    pub fn depth(&self) -> u16 {
        self.depth
    }

    /// Host side: free SQ slots (tail may not catch up to head-1).
    #[must_use]
    pub fn sq_space(&self) -> u16 {
        let used = self.sq_tail_db.wrapping_sub(self.sq_head) % self.depth;
        self.depth - 1 - used
    }

    /// Host side: place a command in the next SQ slot. Returns false
    /// when the queue is full (caller must back off — this is the
    /// "queue full" condition a driver handles).
    pub fn sq_push(&mut self, cmd: NvmeCommand) -> bool {
        if self.sq_space() == 0 {
            return false;
        }
        let slot = usize::from(self.sq_tail_db % self.depth);
        debug_assert!(self.sq[slot].is_none(), "overwriting unconsumed SQE");
        self.sq[slot] = Some(cmd);
        self.sq_tail_db = (self.sq_tail_db + 1) % self.depth;
        true
    }

    /// Host-visible SQ tail doorbell value (what `nvme_sqsync` writes
    /// to the device register).
    #[must_use]
    pub fn sq_tail(&self) -> u16 {
        self.sq_tail_db
    }

    /// Device side: drain commands up to the doorbell.
    pub(crate) fn device_fetch(&mut self, doorbell_tail: u16) -> Vec<NvmeCommand> {
        let mut out = Vec::new();
        while self.sq_head != doorbell_tail {
            let slot = usize::from(self.sq_head % self.depth);
            let cmd = self.sq[slot].take().expect("device fetched empty SQE");
            out.push(cmd);
            self.sq_head = (self.sq_head + 1) % self.depth;
        }
        out
    }

    /// Device side: post a completion. Panics on CQ overflow — a real
    /// device would be fatally misconfigured; the driver sizes CQ ==
    /// SQ so it cannot happen.
    pub(crate) fn cq_post(&mut self, entry: CompletionEntry) {
        let slot = usize::from(self.cq_tail % self.depth);
        assert!(self.cq[slot].is_none(), "CQ overflow");
        self.cq[slot] = Some(entry);
        self.cq_tail = (self.cq_tail + 1) % self.depth;
    }

    /// Host side: consume up to `max` completions, advancing the CQ
    /// head doorbell.
    pub fn cq_consume(&mut self, max: usize) -> Vec<CompletionEntry> {
        let mut out = Vec::new();
        self.cq_consume_into(max, &mut out);
        out
    }

    /// Like [`Self::cq_consume`] but appends into a caller-provided
    /// vector, so a polling loop can reuse one scratch buffer instead
    /// of allocating per sweep. Returns how many entries were taken.
    pub fn cq_consume_into(&mut self, max: usize, out: &mut Vec<CompletionEntry>) -> usize {
        let mut taken = 0;
        while taken < max {
            let slot = usize::from(self.cq_head_db % self.depth);
            match self.cq[slot].take() {
                Some(e) => {
                    out.push(e);
                    taken += 1;
                    self.cq_head_db = (self.cq_head_db + 1) % self.depth;
                }
                None => break,
            }
        }
        taken
    }

    /// Host side: completions waiting without consuming.
    #[must_use]
    pub fn cq_pending(&self) -> usize {
        let mut n = 0;
        let mut h = self.cq_head_db;
        while self.cq[usize::from(h % self.depth)].is_some() {
            n += 1;
            h = (h + 1) % self.depth;
            if n >= usize::from(self.depth) {
                break;
            }
        }
        n
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use dcn_mem::{PhysAddr, PhysRegion};

    fn cmd(cid: u16) -> NvmeCommand {
        NvmeCommand {
            opcode: Opcode::Read,
            cid,
            nsid: 1,
            slba: 0,
            nlb: 8,
            prp: vec![PhysRegion::new(PhysAddr(4096), 4096)],
        }
    }

    #[test]
    fn sq_push_fetch_round_trip() {
        let mut qp = QueuePair::new(1, 8);
        assert!(qp.sq_push(cmd(1)));
        assert!(qp.sq_push(cmd(2)));
        let fetched = qp.device_fetch(qp.sq_tail());
        assert_eq!(fetched.len(), 2);
        assert_eq!(fetched[0].cid, 1);
        assert_eq!(fetched[1].cid, 2);
    }

    #[test]
    fn sq_full_is_reported() {
        let mut qp = QueuePair::new(1, 4);
        // depth-1 usable slots.
        assert!(qp.sq_push(cmd(1)));
        assert!(qp.sq_push(cmd(2)));
        assert!(qp.sq_push(cmd(3)));
        assert!(!qp.sq_push(cmd(4)), "queue must report full");
        // Drain and reuse.
        qp.device_fetch(qp.sq_tail());
        assert!(qp.sq_push(cmd(4)));
    }

    #[test]
    fn cq_post_consume_fifo() {
        let mut qp = QueuePair::new(1, 8);
        for cid in [5u16, 3, 9] {
            qp.cq_post(CompletionEntry {
                cid,
                status: NvmeStatus::Success,
                sq_head: 0,
            });
        }
        assert_eq!(qp.cq_pending(), 3);
        let got = qp.cq_consume(2);
        assert_eq!(got.iter().map(|e| e.cid).collect::<Vec<_>>(), vec![5, 3]);
        let got = qp.cq_consume(10);
        assert_eq!(got.len(), 1);
        assert_eq!(qp.cq_pending(), 0);
    }

    #[test]
    fn ring_wraparound_many_times() {
        let mut qp = QueuePair::new(1, 4);
        for round in 0..100u16 {
            assert!(qp.sq_push(cmd(round)));
            let f = qp.device_fetch(qp.sq_tail());
            assert_eq!(f.len(), 1);
            qp.cq_post(CompletionEntry {
                cid: round,
                status: NvmeStatus::Success,
                sq_head: qp.sq_head,
            });
            let c = qp.cq_consume(4);
            assert_eq!(c.len(), 1);
            assert_eq!(c[0].cid, round);
        }
    }

    #[test]
    fn data_len_sums_prp() {
        let c = NvmeCommand {
            opcode: Opcode::Read,
            cid: 0,
            nsid: 1,
            slba: 0,
            nlb: 24,
            prp: vec![
                PhysRegion::new(PhysAddr(4096), 4096),
                PhysRegion::new(PhysAddr(8192), 4096),
                PhysRegion::new(PhysAddr(12288), 4096),
            ],
        };
        assert_eq!(c.data_len(), 12288);
    }
}
