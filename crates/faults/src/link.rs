//! Link-level fault processes: loss (uniform or Gilbert–Elliott
//! bursty), duplication, and FCS-detected corruption, plus the
//! deterministic targeted faults used by the regression tests.
//!
//! The injector is consulted once per server→client TCP **data**
//! frame, in wire order. Pure control frames (SYN-ACK, bare ACKs,
//! FIN without payload) are never faulted: the loss knobs model the
//! data path — exactly what `Scenario::data_loss` always meant — and
//! keep bursty schedules from wedging a connection before it exists.

use dcn_simcore::SimRng;
use std::collections::HashMap;

/// Frame-loss process for the server→client direction.
#[derive(Debug, Clone, Copy, PartialEq, Default)]
pub enum LossModel {
    #[default]
    None,
    /// Independent per-frame loss with probability `p`.
    Uniform(f64),
    /// Two-state Markov (Gilbert–Elliott) loss: the channel moves
    /// between a Good and a Bad state per frame; each state has its
    /// own loss probability. Models the bursty tail loss that
    /// dominates real video-streaming incidents.
    GilbertElliott {
        /// P(Good → Bad) per frame.
        p_enter_bad: f64,
        /// P(Bad → Good) per frame.
        p_exit_bad: f64,
        /// Loss probability while Good.
        loss_good: f64,
        /// Loss probability while Bad.
        loss_bad: f64,
    },
}

impl LossModel {
    /// A Gilbert–Elliott channel tuned so the *average* loss rate is
    /// `target` while losses cluster in bursts: the Bad state drops
    /// half its frames and is entered rarely but held for ~10 frames.
    pub fn gilbert_elliott_for(target: f64) -> Self {
        // Stationary P(Bad) = p_enter / (p_enter + p_exit); average
        // loss = P(Bad) * loss_bad (loss_good = 0). With p_exit = 0.1
        // and loss_bad = 0.5: p_enter = target * p_exit / (loss_bad *
        // (1 - target/loss_bad)) ≈ 0.2 * target for small targets.
        let loss_bad = 0.5;
        let p_exit = 0.1;
        let frac_bad = (target / loss_bad).min(0.9);
        let p_enter = p_exit * frac_bad / (1.0 - frac_bad);
        LossModel::GilbertElliott {
            p_enter_bad: p_enter,
            p_exit_bad: p_exit,
            loss_good: 0.0,
            loss_bad,
        }
    }

    /// Long-run average loss rate of the model.
    pub fn mean_loss(&self) -> f64 {
        match *self {
            LossModel::None => 0.0,
            LossModel::Uniform(p) => p,
            LossModel::GilbertElliott {
                p_enter_bad,
                p_exit_bad,
                loss_good,
                loss_bad,
            } => {
                let denom = p_enter_bad + p_exit_bad;
                if denom <= 0.0 {
                    return loss_good;
                }
                let frac_bad = p_enter_bad / denom;
                frac_bad * loss_bad + (1.0 - frac_bad) * loss_good
            }
        }
    }
}

/// What happens to one frame.
#[derive(Debug, Clone, Copy, PartialEq, Eq)]
pub enum FrameFate {
    Deliver,
    /// Lost by the loss process.
    Drop,
    /// Delivered twice (switch-level duplication).
    Duplicate,
    /// Corrupted in flight; the receiving NIC's FCS catches it, so
    /// observably a drop — but counted separately and asserted never
    /// to reach a client as bytes.
    CorruptDrop,
    /// Corrupted in flight *and* FCS checking is bypassed
    /// (`NetFaults::fcs_check == false`): the harness flips a payload
    /// byte and delivers the frame. The application-layer verifier
    /// must catch it.
    CorruptDeliver,
}

/// The identity of one TCP data frame, as extracted from its wire
/// headers by the netdev helper (`dcn_netdev::tcp_frame_info`).
#[derive(Debug, Clone, Copy, PartialEq, Eq)]
pub struct FrameInfo {
    /// Stable per-connection key (e.g. the flow's RSS hash).
    pub flow_key: u64,
    /// TCP sequence number of the first payload byte.
    pub seq: u32,
    /// TCP payload length in bytes.
    pub payload_len: u32,
}

#[derive(Debug, Default)]
struct FlowState {
    /// Highest end-of-payload sequence seen (wrapping), for
    /// classifying re-sent ranges as retransmissions.
    max_end: u32,
    seen_any: bool,
    /// Count of data frames observed (for `drop_nth_data_frame`).
    data_frames: u64,
    nth_dropped: bool,
}

/// Per-run link fault injector. One instance covers every flow; the
/// Gilbert–Elliott channel state is shared across flows (it models
/// the server's uplink, not per-client paths).
#[derive(Debug)]
pub struct LinkFaults {
    cfg: crate::NetFaults,
    rng: SimRng,
    in_bad_state: bool,
    flows: HashMap<u64, FlowState>,
    retx_drops_left: u32,
    // ---- counters (read by the workload at end of run) ----
    pub dropped: u64,
    pub duplicated: u64,
    pub corrupt_dropped: u64,
    /// Corrupted frames delivered because FCS checking was bypassed.
    pub corrupt_delivered: u64,
    /// Subset of `dropped` that hit a frame classified as a
    /// retransmission.
    pub retx_dropped: u64,
    pub data_frames_seen: u64,
}

impl LinkFaults {
    pub fn new(cfg: crate::NetFaults, seed: u64) -> Self {
        Self {
            cfg,
            rng: crate::rng_for(seed, crate::salt::LINK),
            in_bad_state: false,
            flows: HashMap::new(),
            retx_drops_left: cfg.retx_drop,
            dropped: 0,
            duplicated: 0,
            corrupt_dropped: 0,
            corrupt_delivered: 0,
            retx_dropped: 0,
            data_frames_seen: 0,
        }
    }

    pub fn is_active(&self) -> bool {
        self.cfg.is_active()
    }

    fn loss_roll(&mut self) -> bool {
        match self.cfg.loss {
            LossModel::None => false,
            LossModel::Uniform(p) => self.rng.chance(p),
            LossModel::GilbertElliott {
                p_enter_bad,
                p_exit_bad,
                loss_good,
                loss_bad,
            } => {
                // State transition first, then a loss roll in the new
                // state — both from the same seeded stream.
                if self.in_bad_state {
                    if self.rng.chance(p_exit_bad) {
                        self.in_bad_state = false;
                    }
                } else if self.rng.chance(p_enter_bad) {
                    self.in_bad_state = true;
                }
                let p = if self.in_bad_state {
                    loss_bad
                } else {
                    loss_good
                };
                self.rng.chance(p)
            }
        }
    }

    /// Decide the fate of one data frame. Must be called in wire
    /// order; every call advances the seeded schedule. Control frames
    /// (payload_len == 0) must not be passed here.
    pub fn classify(&mut self, info: FrameInfo) -> FrameFate {
        debug_assert!(info.payload_len > 0, "control frames are never faulted");
        self.data_frames_seen += 1;
        let flow = self.flows.entry(info.flow_key).or_default();
        flow.data_frames += 1;
        let end = info.seq.wrapping_add(info.payload_len);
        // Wrapping "is this frame entirely behind the high-water
        // mark" check: a re-sent range is a retransmission.
        let is_retx = flow.seen_any && (flow.max_end.wrapping_sub(end) as i32) >= 0;
        if !flow.seen_any || (end.wrapping_sub(flow.max_end) as i32) > 0 {
            flow.max_end = end;
            flow.seen_any = true;
        }

        // Targeted deterministic faults take precedence over the
        // random schedule (and do not consume rng draws).
        if let Some(nth) = self.cfg.drop_nth_data_frame {
            if !flow.nth_dropped && flow.data_frames == nth {
                flow.nth_dropped = true;
                self.dropped += 1;
                if is_retx {
                    self.retx_dropped += 1;
                }
                return FrameFate::Drop;
            }
        }
        if is_retx && self.retx_drops_left > 0 {
            self.retx_drops_left -= 1;
            self.dropped += 1;
            self.retx_dropped += 1;
            return FrameFate::Drop;
        }

        if self.loss_roll() {
            self.dropped += 1;
            if is_retx {
                self.retx_dropped += 1;
            }
            return FrameFate::Drop;
        }
        if self.cfg.corrupt_p > 0.0 && self.rng.chance(self.cfg.corrupt_p) {
            if self.cfg.fcs_check {
                self.corrupt_dropped += 1;
                return FrameFate::CorruptDrop;
            }
            self.corrupt_delivered += 1;
            return FrameFate::CorruptDeliver;
        }
        if self.cfg.dup_p > 0.0 && self.rng.chance(self.cfg.dup_p) {
            self.duplicated += 1;
            return FrameFate::Duplicate;
        }
        FrameFate::Deliver
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::NetFaults;

    fn frame(flow: u64, seq: u32, len: u32) -> FrameInfo {
        FrameInfo {
            flow_key: flow,
            seq,
            payload_len: len,
        }
    }

    #[test]
    fn uniform_loss_rate_converges() {
        let cfg = NetFaults {
            loss: LossModel::Uniform(0.05),
            ..NetFaults::default()
        };
        let mut lf = LinkFaults::new(cfg, 1);
        let n = 200_000u64;
        for i in 0..n {
            lf.classify(frame(0, (i as u32) * 1448, 1448));
        }
        let rate = lf.dropped as f64 / n as f64;
        assert!((rate - 0.05).abs() < 0.005, "rate={rate}");
    }

    #[test]
    fn gilbert_elliott_hits_target_mean_and_bursts() {
        let target = 0.01;
        let model = LossModel::gilbert_elliott_for(target);
        assert!((model.mean_loss() - target).abs() < 1e-9);
        let cfg = NetFaults {
            loss: model,
            ..NetFaults::default()
        };
        let mut lf = LinkFaults::new(cfg, 2);
        let n = 400_000u64;
        let mut drops = Vec::new();
        for i in 0..n {
            let fate = lf.classify(frame(0, (i as u32).wrapping_mul(1448), 1448));
            drops.push(fate == FrameFate::Drop);
        }
        let rate = lf.dropped as f64 / n as f64;
        assert!((rate - target).abs() < 0.25 * target, "rate={rate}");
        // Burstiness: P(drop | previous dropped) must be far above the
        // unconditional rate (≈ loss_bad * P(stay bad) ≈ 0.45).
        let mut after_drop = 0u64;
        let mut both = 0u64;
        for w in drops.windows(2) {
            if w[0] {
                after_drop += 1;
                if w[1] {
                    both += 1;
                }
            }
        }
        let cond = both as f64 / after_drop as f64;
        assert!(cond > 10.0 * rate, "cond={cond} rate={rate}");
    }

    #[test]
    fn same_seed_same_schedule() {
        let cfg = NetFaults {
            loss: LossModel::gilbert_elliott_for(0.05),
            dup_p: 0.01,
            corrupt_p: 0.01,
            ..NetFaults::default()
        };
        let run = |seed| {
            let mut lf = LinkFaults::new(cfg, seed);
            (0..10_000u32)
                .map(|i| lf.classify(frame(u64::from(i % 7), i * 999, 1448)))
                .collect::<Vec<_>>()
        };
        assert_eq!(run(7), run(7));
        assert_ne!(run(7), run(8));
    }

    #[test]
    fn retransmissions_are_classified_by_sequence_range() {
        let cfg = NetFaults {
            retx_drop: 1,
            ..NetFaults::default()
        };
        let mut lf = LinkFaults::new(cfg, 3);
        assert_eq!(lf.classify(frame(1, 0, 1448)), FrameFate::Deliver);
        assert_eq!(lf.classify(frame(1, 1448, 1448)), FrameFate::Deliver);
        // Re-sent range → retransmission → eaten by retx_drop.
        assert_eq!(lf.classify(frame(1, 0, 1448)), FrameFate::Drop);
        assert_eq!(lf.retx_dropped, 1);
        // Budget exhausted: the next retransmission goes through.
        assert_eq!(lf.classify(frame(1, 0, 1448)), FrameFate::Deliver);
        // New data on another flow is not a retransmission.
        assert_eq!(lf.classify(frame(2, 0, 1448)), FrameFate::Deliver);
        assert_eq!(lf.retx_dropped, 1);
    }

    #[test]
    fn nth_data_frame_drop_fires_once_per_flow() {
        let cfg = NetFaults {
            drop_nth_data_frame: Some(3),
            ..NetFaults::default()
        };
        let mut lf = LinkFaults::new(cfg, 4);
        for flow in [10u64, 20u64] {
            for i in 0..6u32 {
                let fate = lf.classify(frame(flow, i * 1448, 1448));
                if i == 2 {
                    assert_eq!(fate, FrameFate::Drop, "flow {flow} frame {i}");
                } else {
                    assert_eq!(fate, FrameFate::Deliver, "flow {flow} frame {i}");
                }
            }
        }
        assert_eq!(lf.dropped, 2);
    }

    #[test]
    fn fcs_bypass_delivers_corrupted_frames() {
        let cfg = NetFaults {
            corrupt_p: 1.0,
            fcs_check: false,
            ..NetFaults::default()
        };
        let mut lf = LinkFaults::new(cfg, 6);
        assert_eq!(lf.classify(frame(1, 0, 1448)), FrameFate::CorruptDeliver);
        assert_eq!(lf.corrupt_delivered, 1);
        assert_eq!(lf.corrupt_dropped, 0);

        // With FCS on, the same knob is an (observed) drop.
        let mut lf = LinkFaults::new(
            NetFaults {
                corrupt_p: 1.0,
                ..NetFaults::default()
            },
            6,
        );
        assert_eq!(lf.classify(frame(1, 0, 1448)), FrameFate::CorruptDrop);
        assert_eq!(lf.corrupt_dropped, 1);
        assert_eq!(lf.corrupt_delivered, 0);
    }

    #[test]
    fn seq_wraparound_not_misclassified() {
        let cfg = NetFaults::default();
        let mut lf = LinkFaults::new(cfg, 5);
        let near_wrap = u32::MAX - 1000;
        lf.classify(frame(1, near_wrap, 1448));
        // Crosses the 2^32 boundary: still *new* data, not a retx.
        let flow = lf.flows.get(&1).unwrap();
        assert!(flow.seen_any);
        lf.classify(frame(1, near_wrap.wrapping_add(1448), 1448));
        let flow = lf.flows.get(&1).unwrap();
        assert_eq!(flow.max_end, near_wrap.wrapping_add(2 * 1448));
    }
}
