//! NVMe-side fault decisions: media errors on reads and firmware
//! latency spikes. Consulted by the device model at command submit
//! time so the whole failure (suppressed DMA + error completion) is
//! fixed the moment the doorbell rings — later reordering inside the
//! firmware model cannot change the schedule.

use dcn_simcore::SimRng;

#[derive(Debug)]
pub struct NvmeFaultInjector {
    cfg: crate::NvmeFaults,
    rng: SimRng,
    pub read_errors: u64,
    pub latency_spikes: u64,
}

impl NvmeFaultInjector {
    pub fn new(cfg: crate::NvmeFaults, seed: u64) -> Self {
        Self {
            cfg,
            rng: crate::rng_for(seed, crate::salt::NVME_DEV),
            read_errors: 0,
            latency_spikes: 0,
        }
    }

    pub fn is_active(&self) -> bool {
        self.cfg.read_error_p > 0.0 || self.cfg.latency_spike_p > 0.0
    }

    /// Should this read command fail with a media error?
    pub fn read_error(&mut self) -> bool {
        if self.cfg.read_error_p > 0.0 && self.rng.chance(self.cfg.read_error_p) {
            self.read_errors += 1;
            return true;
        }
        false
    }

    /// Service-time multiplier for this command (1.0 = no spike).
    pub fn latency_mult(&mut self) -> f64 {
        if self.cfg.latency_spike_p > 0.0 && self.rng.chance(self.cfg.latency_spike_p) {
            self.latency_spikes += 1;
            return self.cfg.latency_spike_mult.max(1.0);
        }
        1.0
    }
}

/// Submission-queue reject decisions for the diskmap `sqsync` path.
#[derive(Debug)]
pub struct SqFaultInjector {
    reject_p: f64,
    rng: SimRng,
    pub rejects: u64,
}

impl SqFaultInjector {
    pub fn new(reject_p: f64, seed: u64) -> Self {
        Self {
            reject_p,
            rng: crate::rng_for(seed, crate::salt::SQ),
            rejects: 0,
        }
    }

    pub fn is_active(&self) -> bool {
        self.reject_p > 0.0
    }

    /// Should this sqsync call be refused admission?
    pub fn reject(&mut self) -> bool {
        if self.reject_p > 0.0 && self.rng.chance(self.reject_p) {
            self.rejects += 1;
            return true;
        }
        false
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::NvmeFaults;

    #[test]
    fn error_rate_converges_and_is_seeded() {
        let cfg = NvmeFaults {
            read_error_p: 0.01,
            latency_spike_p: 0.002,
            ..NvmeFaults::default()
        };
        let mut a = NvmeFaultInjector::new(cfg, 9);
        let mut b = NvmeFaultInjector::new(cfg, 9);
        let n = 100_000;
        let va: Vec<bool> = (0..n).map(|_| a.read_error()).collect();
        let vb: Vec<bool> = (0..n).map(|_| b.read_error()).collect();
        assert_eq!(va, vb, "same seed, same schedule");
        let rate = a.read_errors as f64 / n as f64;
        assert!((rate - 0.01).abs() < 0.002, "rate={rate}");
        for _ in 0..n {
            a.latency_mult();
        }
        assert!(a.latency_spikes > 0);
    }

    #[test]
    fn inactive_injector_draws_nothing() {
        let mut inj = NvmeFaultInjector::new(NvmeFaults::default(), 1);
        assert!(!inj.is_active());
        for _ in 0..100 {
            assert!(!inj.read_error());
            assert_eq!(inj.latency_mult(), 1.0);
        }
        assert_eq!(inj.read_errors + inj.latency_spikes, 0);
    }

    #[test]
    fn sq_rejects_are_seeded() {
        let mut a = SqFaultInjector::new(0.05, 3);
        let mut b = SqFaultInjector::new(0.05, 3);
        let va: Vec<bool> = (0..10_000).map(|_| a.reject()).collect();
        let vb: Vec<bool> = (0..10_000).map(|_| b.reject()).collect();
        assert_eq!(va, vb);
        assert!(a.rejects > 300 && a.rejects < 800, "rejects={}", a.rejects);
    }
}
