//! # dcn-faults — seeded, virtual-time fault injection
//!
//! Every fault schedule in this crate is a pure function of a
//! [`SimRng`] seed and the (deterministic) order in which the
//! simulation consults it. There are no wall clocks and no global
//! state: a failing run replays bit-identically from its seed, which
//! is what makes the regression matrix in `tests/faults.rs` useful.
//!
//! The crate only *decides* faults; it never models their effects.
//! Each subsystem owns its own failure semantics:
//!
//! * NVMe read errors / latency spikes — decided here, applied by
//!   `dcn-nvme` (`NvmeStatus::MediaError` completions, stretched
//!   firmware service times).
//! * Submission-queue rejects — decided here, applied by
//!   `dcn-diskmap`'s `sqsync` (the syscall reports `QueueFull` and
//!   the caller's staged commands survive for resubmission).
//! * Link faults (drop / duplicate / corrupt, uniform or
//!   Gilbert–Elliott bursty) — decided here per wire frame, applied
//!   by the workload's switch model between server NIC and clients.
//! * Client stalls — decided here, applied by the client fleet
//!   (frames are delayed, never lost; the server's RTO covers the
//!   gap).

use dcn_simcore::{Nanos, SimRng};

pub mod link;
pub mod nvme;

pub use link::{FrameFate, FrameInfo, LinkFaults, LossModel};
pub use nvme::{NvmeFaultInjector, SqFaultInjector};

/// Per-component fault probabilities for the NVMe device model.
#[derive(Debug, Clone, Copy, PartialEq)]
pub struct NvmeFaults {
    /// Probability that a read command completes with a media error
    /// (DMA suppressed, `NvmeStatus::MediaError` posted).
    pub read_error_p: f64,
    /// Probability that a command's firmware service time is
    /// stretched by `latency_spike_mult`.
    pub latency_spike_p: f64,
    /// Service-time multiplier for a latency spike (e.g. 20.0 models
    /// an internal GC pause).
    pub latency_spike_mult: f64,
    /// Probability that an `sqsync` syscall refuses admission for the
    /// remaining staged commands (reported as `QueueFull`), modelling
    /// a device whose submission queue momentarily fills.
    pub sq_reject_p: f64,
}

impl Default for NvmeFaults {
    fn default() -> Self {
        Self {
            read_error_p: 0.0,
            latency_spike_p: 0.0,
            latency_spike_mult: 20.0,
            sq_reject_p: 0.0,
        }
    }
}

impl NvmeFaults {
    pub fn is_active(&self) -> bool {
        self.read_error_p > 0.0 || self.latency_spike_p > 0.0 || self.sq_reject_p > 0.0
    }
}

/// Server→client link faults, applied per TCP data frame.
#[derive(Debug, Clone, Copy, PartialEq)]
pub struct NetFaults {
    /// Loss process for data frames.
    pub loss: LossModel,
    /// Probability a delivered data frame is delivered twice.
    pub dup_p: f64,
    /// Probability a data frame is corrupted in flight. With
    /// `fcs_check` on (the default) the NIC's FCS detects it, so the
    /// observable effect is a (separately counted) drop — corrupted
    /// bytes are never delivered upward. With `fcs_check` off the
    /// mangled frame is delivered, and catching it becomes the
    /// application-layer verifier's job.
    pub corrupt_p: f64,
    /// Model the receiving NIC's frame-check-sequence validation.
    /// Bypassing it (false) turns corruption events into
    /// `FrameFate::CorruptDeliver` — the end-to-end test that proves
    /// the fleet's `StreamVerifier` really checks content.
    pub fcs_check: bool,
    /// Deterministic targeted fault: drop exactly the Nth data frame
    /// of every flow (1-based), once per flow. Forces tail loss / RTO
    /// without relying on random schedules.
    pub drop_nth_data_frame: Option<u64>,
    /// Deterministic targeted fault: drop the first N frames that are
    /// classified as retransmissions (re-sent sequence ranges). Tests
    /// "loss of the retransmission itself".
    pub retx_drop: u32,
}

impl Default for NetFaults {
    fn default() -> Self {
        Self {
            loss: LossModel::None,
            dup_p: 0.0,
            corrupt_p: 0.0,
            fcs_check: true,
            drop_nth_data_frame: None,
            retx_drop: 0,
        }
    }
}

impl NetFaults {
    pub fn is_active(&self) -> bool {
        !matches!(self.loss, LossModel::None)
            || self.dup_p > 0.0
            || self.corrupt_p > 0.0
            || self.drop_nth_data_frame.is_some()
            || self.retx_drop > 0
    }
}

/// Client (mis)behaviour: stalls, slowloris readers, and aggressive
/// connection-open schedules. Decided here, applied by the client
/// fleet / workload runner.
#[derive(Debug, Clone, Copy, PartialEq)]
pub struct ClientFaults {
    /// Per-burst probability that a client stops reading / acking for
    /// `stall` of virtual time (frames are delayed, never lost; the
    /// server's RTO covers the gap).
    pub stall_p: f64,
    pub stall: Nanos,
    /// Slowloris attackers: the first N spawned clients complete the
    /// TCP handshake, dribble a *truncated* request head, and then go
    /// silent forever — holding a connection slot (and, on a naive
    /// server, DMA buffers) without ever completing a request. The
    /// server's header-read timeout is the defense under test.
    pub slowloris_conns: u32,
    /// Open-rate attack: spawn every client at t=0 instead of ramping
    /// over the warmup — a thundering-herd SYN flood that exercises
    /// the admission path's burst behaviour.
    pub aggressive_open: bool,
}

impl Default for ClientFaults {
    fn default() -> Self {
        Self {
            stall_p: 0.0,
            stall: Nanos::from_micros(500),
            slowloris_conns: 0,
            aggressive_open: false,
        }
    }
}

impl ClientFaults {
    pub fn is_active(&self) -> bool {
        self.stall_p > 0.0 || self.slowloris_conns > 0 || self.aggressive_open
    }
}

/// A whole-server scenario event: which server, and when (virtual
/// time from run start).
#[derive(Debug, Clone, Copy, PartialEq, Eq)]
pub struct ServerFault {
    pub server: u32,
    pub at: Nanos,
}

/// Whole-server fault hooks for the cluster layer (`dcn-cluster`).
/// Unlike the per-frame/per-command knobs above these are
/// deterministic scheduled events, not probabilities: a scale-out
/// scenario kills or drains *one specific box* at a known virtual
/// time and measures the fleet's recovery.
#[derive(Debug, Clone, Copy, PartialEq, Default)]
pub struct ClusterFaults {
    /// Hard fail-stop: the server stops transmitting, receiving, and
    /// polling at `at`. In-flight responses are severed mid-stream;
    /// clients must reconnect to a replica and resume by range.
    pub kill: Option<ServerFault>,
    /// Administrative drain: the dispatcher stops routing *new*
    /// requests to the server at `at`; in-flight responses finish
    /// normally.
    pub drain: Option<ServerFault>,
}

impl ClusterFaults {
    pub fn is_active(&self) -> bool {
        self.kill.is_some() || self.drain.is_some()
    }
}

/// The full fault schedule for one scenario. `Default` is entirely
/// inactive — every existing scenario runs unchanged.
#[derive(Debug, Clone, Copy, PartialEq, Default)]
pub struct FaultConfig {
    pub nvme: NvmeFaults,
    pub net: NetFaults,
    pub client: ClientFaults,
    /// Whole-server events; ignored by single-server runners.
    pub cluster: ClusterFaults,
}

impl FaultConfig {
    pub fn is_active(&self) -> bool {
        self.nvme.is_active()
            || self.net.is_active()
            || self.client.is_active()
            || self.cluster.is_active()
    }

    /// The acceptance scenario from the issue: 1% bursty loss plus
    /// 0.1% NVMe read errors.
    pub fn bursty_with_disk_errors() -> Self {
        Self {
            nvme: NvmeFaults {
                read_error_p: 0.001,
                ..NvmeFaults::default()
            },
            net: NetFaults {
                loss: LossModel::gilbert_elliott_for(0.01),
                ..NetFaults::default()
            },
            client: ClientFaults::default(),
            cluster: ClusterFaults::default(),
        }
    }
}

/// Salts for deriving independent fault streams from one scenario
/// seed. Each injector forks its own `SimRng` so adding a fault class
/// never perturbs the schedule of another.
pub mod salt {
    pub const LINK: u64 = 0xFA17_0001;
    pub const CLIENT: u64 = 0xFA17_0002;
    pub const NVME_DEV: u64 = 0xFA17_0003;
    pub const SQ: u64 = 0xFA17_0004;
}

/// Derive the rng for one injector from the scenario seed.
pub fn rng_for(seed: u64, salt: u64) -> SimRng {
    SimRng::new(seed ^ salt)
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn default_config_is_inactive() {
        let f = FaultConfig::default();
        assert!(!f.is_active());
        assert!(!f.nvme.is_active());
        assert!(!f.net.is_active());
        assert!(!f.client.is_active());
    }

    #[test]
    fn acceptance_config_is_active() {
        let f = FaultConfig::bursty_with_disk_errors();
        assert!(f.is_active());
        assert!(f.nvme.is_active());
        assert!(f.net.is_active());
        assert!(!f.cluster.is_active());
    }

    #[test]
    fn client_misbehaviour_activates_config() {
        let f = FaultConfig {
            client: ClientFaults {
                slowloris_conns: 4,
                ..ClientFaults::default()
            },
            ..FaultConfig::default()
        };
        assert!(f.is_active());
        assert!(f.client.is_active());
        let g = FaultConfig {
            client: ClientFaults {
                aggressive_open: true,
                ..ClientFaults::default()
            },
            ..FaultConfig::default()
        };
        assert!(g.client.is_active());
    }

    #[test]
    fn cluster_faults_activate_config() {
        let f = FaultConfig {
            cluster: ClusterFaults {
                kill: Some(ServerFault {
                    server: 1,
                    at: Nanos::from_millis(300),
                }),
                drain: None,
            },
            ..FaultConfig::default()
        };
        assert!(f.is_active());
        assert!(f.cluster.is_active());
    }
}
