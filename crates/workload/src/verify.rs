//! Stream verification: the client-side oracle check.
//!
//! The verifier re-parses the response byte stream (headers, record
//! framing), decrypts records with the session cipher, and compares
//! plaintext against the catalog oracle. It is wholly independent of
//! the `RequestDriver`'s accounting, so the two cross-check each
//! other — a flipped byte the driver happily counts as goodput shows
//! up here as a verification failure.
//!
//! Responses may be *resumed*: a client that reconnected to a replica
//! after its server died asks for `Range: bytes=base-`, so the
//! response body starts at plaintext file offset `base`. Record
//! framing (and GCM nonces) restart at the response, but oracle
//! comparison uses the absolute file offset `base + resp_off`.

use dcn_crypto::{RecordCipher, GCM_TAG_LEN, RECORD_HEADER_LEN, RECORD_PAYLOAD_MAX};
use dcn_httpd::response::scan_response_head;
use dcn_store::{Catalog, FileId};
use std::collections::VecDeque;

/// Outcome counters of stream verification.
#[derive(Clone, Copy, Default, Debug)]
pub struct VerifyStats {
    pub verified_bytes: u64,
    pub failures: u64,
}

/// One expected response: the file and the plaintext file offset its
/// body starts at (0 for full responses, the resume base for ranged
/// ones).
pub type Expected = (FileId, u64);

/// Incremental per-connection verifier.
pub struct StreamVerifier {
    buf: Vec<u8>,
    /// Current response state: (file, base file offset,
    /// response-relative plaintext offset, encrypted?).
    body: Option<(FileId, u64, u64, bool)>,
}

impl Default for StreamVerifier {
    fn default() -> Self {
        Self::new()
    }
}

impl StreamVerifier {
    #[must_use]
    pub fn new() -> Self {
        StreamVerifier {
            buf: Vec::new(),
            body: None,
        }
    }

    pub fn push(
        &mut self,
        data: &[u8],
        outstanding: &mut VecDeque<Expected>,
        catalog: &Catalog,
        cipher: &RecordCipher,
        stats: &mut VerifyStats,
    ) {
        self.buf.extend_from_slice(data);
        loop {
            match self.body {
                None => {
                    let Some(head) = scan_response_head(&self.buf) else {
                        return;
                    };
                    self.buf.drain(..head.header_len);
                    if head.status == 503 {
                        // Load shed: zero-length body and the request
                        // stays outstanding — the client retries it
                        // after the Retry-After backoff, and the
                        // eventual 200 verifies against the same
                        // expected entry.
                        continue;
                    }
                    if head.status != 200 && head.status != 206 {
                        // Other bodiless errors (404/431) consume the
                        // request without a verifiable body.
                        outstanding.pop_front();
                        continue;
                    }
                    let (file, base) = outstanding.front().copied().expect("response w/o request");
                    self.body = Some((file, base, 0, head.encrypted));
                }
                Some((file, base, resp_off, encrypted)) => {
                    let file_size = catalog.file_size();
                    let abs_off = base + resp_off;
                    if abs_off >= file_size {
                        self.body = None;
                        outstanding.pop_front();
                        continue;
                    }
                    if encrypted {
                        let rec_plain =
                            (file_size - abs_off).min(RECORD_PAYLOAD_MAX as u64) as usize;
                        let rec_wire = RECORD_HEADER_LEN + rec_plain + GCM_TAG_LEN;
                        if self.buf.len() < rec_wire {
                            return;
                        }
                        let record: Vec<u8> = self.buf.drain(..rec_wire).collect();
                        let mut ct =
                            record[RECORD_HEADER_LEN..RECORD_HEADER_LEN + rec_plain].to_vec();
                        let tag: [u8; GCM_TAG_LEN] =
                            record[rec_wire - GCM_TAG_LEN..].try_into().expect("tag");
                        // GCM nonces are response-relative (the
                        // serving replica framed from scratch); the
                        // oracle offset is file-absolute.
                        if cipher.open_record(resp_off, &mut ct, &tag) {
                            let mut want = vec![0u8; ct.len()];
                            catalog.expected(file, abs_off, &mut want);
                            if ct == want {
                                stats.verified_bytes += ct.len() as u64;
                            } else {
                                stats.failures += 1;
                            }
                        } else {
                            stats.failures += 1;
                        }
                        self.body = Some((file, base, resp_off + rec_plain as u64, encrypted));
                    } else {
                        if self.buf.is_empty() {
                            return;
                        }
                        let n = (file_size - abs_off).min(self.buf.len() as u64) as usize;
                        let got: Vec<u8> = self.buf.drain(..n).collect();
                        let mut want = vec![0u8; n];
                        catalog.expected(file, abs_off, &mut want);
                        if got == want {
                            stats.verified_bytes += n as u64;
                        } else {
                            stats.failures += 1;
                        }
                        self.body = Some((file, base, resp_off + n as u64, encrypted));
                    }
                }
            }
        }
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use dcn_httpd::response::{response_header, ResponseInfo};

    fn catalog() -> Catalog {
        Catalog::new(1000, 300 * 1024, 4, 7)
    }

    #[test]
    fn resumed_response_verifies_against_absolute_offsets() {
        let cat = catalog();
        let base = 4 * RECORD_PAYLOAD_MAX as u64;
        let file_size = cat.file_size();
        let mut outstanding: VecDeque<Expected> = VecDeque::new();
        outstanding.push_back((FileId(11), base));
        let cipher = RecordCipher::new(b"0123456789abcdef", 1);
        let mut v = StreamVerifier::new();
        let mut stats = VerifyStats::default();
        let mut stream = response_header(
            ResponseInfo::Partial {
                body_len: file_size - base,
                offset: base,
            },
            false,
        );
        let mut body = vec![0u8; (file_size - base) as usize];
        cat.expected(FileId(11), base, &mut body);
        stream.extend_from_slice(&body);
        for chunk in stream.chunks(997) {
            v.push(chunk, &mut outstanding, &cat, &cipher, &mut stats);
        }
        assert_eq!(stats.failures, 0);
        assert_eq!(stats.verified_bytes, file_size - base);
        assert!(outstanding.is_empty());
    }

    #[test]
    fn resumed_response_with_wrong_content_fails() {
        let cat = catalog();
        let base = 2 * RECORD_PAYLOAD_MAX as u64;
        let file_size = cat.file_size();
        let mut outstanding: VecDeque<Expected> = VecDeque::new();
        outstanding.push_back((FileId(5), base));
        let cipher = RecordCipher::new(b"0123456789abcdef", 1);
        let mut v = StreamVerifier::new();
        let mut stats = VerifyStats::default();
        let mut stream = response_header(
            ResponseInfo::Partial {
                body_len: file_size - base,
                offset: base,
            },
            false,
        );
        // Content for offset 0 delivered at resume offset `base`:
        // oracle mismatch.
        let mut body = vec![0u8; (file_size - base) as usize];
        cat.expected(FileId(5), 0, &mut body);
        stream.extend_from_slice(&body);
        v.push(&stream, &mut outstanding, &cat, &cipher, &mut stats);
        assert!(stats.failures > 0);
    }
}
