//! Stream verification: the client-side oracle check.
//!
//! The verifier re-parses the response byte stream (headers, record
//! framing), decrypts records with the session cipher, and compares
//! plaintext against the catalog oracle. It is wholly independent of
//! the `RequestDriver`'s accounting, so the two cross-check each
//! other — a flipped byte the driver happily counts as goodput shows
//! up here as a verification failure.
//!
//! Responses may be *resumed*: a client that reconnected to a replica
//! after its server died asks for `Range: bytes=base-`, so the
//! response body starts at plaintext file offset `base`. Record
//! framing (and GCM nonces) restart at the response, but oracle
//! comparison uses the absolute file offset `base + resp_off`.

use dcn_crypto::{RecordCipher, GCM_TAG_LEN, RECORD_HEADER_LEN, RECORD_PAYLOAD_MAX};
use dcn_httpd::response::scan_response_head;
use dcn_store::{AbrManifest, Catalog, FileId};
use std::collections::VecDeque;

/// Outcome counters of stream verification.
#[derive(Clone, Copy, Default, Debug)]
pub struct VerifyStats {
    pub verified_bytes: u64,
    pub failures: u64,
    /// Responses whose delivered chunk was not part of the manifest
    /// range the ABR client claimed to be fetching (wrong-rung
    /// delivery). Counted into `failures` as well.
    pub rung_mismatches: u64,
}

/// An ABR client's statement of intent: "this request is segment
/// `seg` of `title` at quality `rung`". Checked against the manifest
/// when the response body starts — a server (or dispatcher) handing
/// back a chunk outside that rung's range is a verification failure
/// even though the bytes themselves match the catalog oracle.
#[derive(Clone, Copy, Debug, PartialEq, Eq)]
pub struct RungClaim {
    pub title: u64,
    pub seg: u32,
    pub rung: usize,
}

/// One expected response: the file, the plaintext file offset its
/// body starts at (0 for full responses, the resume base for ranged
/// ones), and — for ABR clients — the manifest claim.
#[derive(Clone, Copy, Debug, PartialEq, Eq)]
pub struct Expected {
    pub file: FileId,
    pub base: u64,
    pub claim: Option<RungClaim>,
}

impl Expected {
    /// A fixed-workload expectation (no manifest claim).
    #[must_use]
    pub fn plain(file: FileId, base: u64) -> Self {
        Expected {
            file,
            base,
            claim: None,
        }
    }

    /// An ABR expectation carrying the (title, seg, rung) claim.
    #[must_use]
    pub fn claimed(file: FileId, base: u64, claim: RungClaim) -> Self {
        Expected {
            file,
            base,
            claim: Some(claim),
        }
    }
}

/// Incremental per-connection verifier.
pub struct StreamVerifier {
    buf: Vec<u8>,
    /// Current response state: (file, base file offset,
    /// response-relative plaintext offset, encrypted?).
    body: Option<(FileId, u64, u64, bool)>,
    /// ABR manifest for rung-claim checks (None for fixed workloads).
    manifest: Option<AbrManifest>,
}

impl Default for StreamVerifier {
    fn default() -> Self {
        Self::new()
    }
}

impl StreamVerifier {
    #[must_use]
    pub fn new() -> Self {
        StreamVerifier {
            buf: Vec::new(),
            body: None,
            manifest: None,
        }
    }

    /// A verifier that additionally checks each response's delivered
    /// chunk against the manifest range of the client's rung claim.
    #[must_use]
    pub fn with_manifest(manifest: AbrManifest) -> Self {
        StreamVerifier {
            manifest: Some(manifest),
            ..Self::new()
        }
    }

    pub fn push(
        &mut self,
        data: &[u8],
        outstanding: &mut VecDeque<Expected>,
        catalog: &Catalog,
        cipher: &RecordCipher,
        stats: &mut VerifyStats,
    ) {
        self.buf.extend_from_slice(data);
        loop {
            match self.body {
                None => {
                    let Some(head) = scan_response_head(&self.buf) else {
                        return;
                    };
                    self.buf.drain(..head.header_len);
                    if head.status == 503 {
                        // Load shed: zero-length body and the request
                        // stays outstanding — the client retries it
                        // after the Retry-After backoff, and the
                        // eventual 200 verifies against the same
                        // expected entry.
                        continue;
                    }
                    if head.status != 200 && head.status != 206 {
                        // Other bodiless errors (404/431) consume the
                        // request without a verifiable body.
                        outstanding.pop_front();
                        continue;
                    }
                    let exp = outstanding.front().copied().expect("response w/o request");
                    if let (Some(m), Some(c)) = (self.manifest.as_ref(), exp.claim) {
                        if !m.in_rung(exp.file, c.title, c.seg, c.rung) {
                            stats.failures += 1;
                            stats.rung_mismatches += 1;
                        }
                    }
                    self.body = Some((exp.file, exp.base, 0, head.encrypted));
                }
                Some((file, base, resp_off, encrypted)) => {
                    let file_size = catalog.file_size();
                    let abs_off = base + resp_off;
                    if abs_off >= file_size {
                        self.body = None;
                        outstanding.pop_front();
                        continue;
                    }
                    if encrypted {
                        let rec_plain =
                            (file_size - abs_off).min(RECORD_PAYLOAD_MAX as u64) as usize;
                        let rec_wire = RECORD_HEADER_LEN + rec_plain + GCM_TAG_LEN;
                        if self.buf.len() < rec_wire {
                            return;
                        }
                        let record: Vec<u8> = self.buf.drain(..rec_wire).collect();
                        let mut ct =
                            record[RECORD_HEADER_LEN..RECORD_HEADER_LEN + rec_plain].to_vec();
                        let tag: [u8; GCM_TAG_LEN] =
                            record[rec_wire - GCM_TAG_LEN..].try_into().expect("tag");
                        // GCM nonces are response-relative (the
                        // serving replica framed from scratch); the
                        // oracle offset is file-absolute.
                        if cipher.open_record(resp_off, &mut ct, &tag) {
                            let mut want = vec![0u8; ct.len()];
                            catalog.expected(file, abs_off, &mut want);
                            if ct == want {
                                stats.verified_bytes += ct.len() as u64;
                            } else {
                                stats.failures += 1;
                            }
                        } else {
                            stats.failures += 1;
                        }
                        self.body = Some((file, base, resp_off + rec_plain as u64, encrypted));
                    } else {
                        if self.buf.is_empty() {
                            return;
                        }
                        let n = (file_size - abs_off).min(self.buf.len() as u64) as usize;
                        let got: Vec<u8> = self.buf.drain(..n).collect();
                        let mut want = vec![0u8; n];
                        catalog.expected(file, abs_off, &mut want);
                        if got == want {
                            stats.verified_bytes += n as u64;
                        } else {
                            stats.failures += 1;
                        }
                        self.body = Some((file, base, resp_off + n as u64, encrypted));
                    }
                }
            }
        }
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use dcn_httpd::response::{response_header, ResponseInfo};

    fn catalog() -> Catalog {
        Catalog::new(1000, 300 * 1024, 4, 7)
    }

    #[test]
    fn resumed_response_verifies_against_absolute_offsets() {
        let cat = catalog();
        let base = 4 * RECORD_PAYLOAD_MAX as u64;
        let file_size = cat.file_size();
        let mut outstanding: VecDeque<Expected> = VecDeque::new();
        outstanding.push_back(Expected::plain(FileId(11), base));
        let cipher = RecordCipher::new(b"0123456789abcdef", 1);
        let mut v = StreamVerifier::new();
        let mut stats = VerifyStats::default();
        let mut stream = response_header(
            ResponseInfo::Partial {
                body_len: file_size - base,
                offset: base,
            },
            false,
        );
        let mut body = vec![0u8; (file_size - base) as usize];
        cat.expected(FileId(11), base, &mut body);
        stream.extend_from_slice(&body);
        for chunk in stream.chunks(997) {
            v.push(chunk, &mut outstanding, &cat, &cipher, &mut stats);
        }
        assert_eq!(stats.failures, 0);
        assert_eq!(stats.verified_bytes, file_size - base);
        assert!(outstanding.is_empty());
    }

    #[test]
    fn resumed_response_with_wrong_content_fails() {
        let cat = catalog();
        let base = 2 * RECORD_PAYLOAD_MAX as u64;
        let file_size = cat.file_size();
        let mut outstanding: VecDeque<Expected> = VecDeque::new();
        outstanding.push_back(Expected::plain(FileId(5), base));
        let cipher = RecordCipher::new(b"0123456789abcdef", 1);
        let mut v = StreamVerifier::new();
        let mut stats = VerifyStats::default();
        let mut stream = response_header(
            ResponseInfo::Partial {
                body_len: file_size - base,
                offset: base,
            },
            false,
        );
        // Content for offset 0 delivered at resume offset `base`:
        // oracle mismatch.
        let mut body = vec![0u8; (file_size - base) as usize];
        cat.expected(FileId(5), 0, &mut body);
        stream.extend_from_slice(&body);
        v.push(&stream, &mut outstanding, &cat, &cipher, &mut stats);
        assert!(stats.failures > 0);
    }

    fn manifest(cat: &Catalog) -> AbrManifest {
        AbrManifest::carve(cat, &[1, 2, 4], 8, dcn_simcore::Nanos::from_millis(50))
    }

    /// Build a full oracle-correct response stream for `file`.
    fn ok_stream(cat: &Catalog, file: FileId) -> Vec<u8> {
        let mut stream = response_header(
            ResponseInfo::Ok {
                body_len: cat.file_size(),
            },
            false,
        );
        let mut body = vec![0u8; cat.file_size() as usize];
        cat.expected(file, 0, &mut body);
        stream.extend_from_slice(&body);
        stream
    }

    #[test]
    fn matching_rung_claim_verifies_clean() {
        let cat = catalog();
        let m = manifest(&cat);
        let (start, _) = m.rung_range(1, 2, 1);
        let mut outstanding: VecDeque<Expected> = VecDeque::new();
        outstanding.push_back(Expected::claimed(
            start,
            0,
            RungClaim {
                title: 1,
                seg: 2,
                rung: 1,
            },
        ));
        let cipher = RecordCipher::new(b"0123456789abcdef", 1);
        let mut v = StreamVerifier::with_manifest(m);
        let mut stats = VerifyStats::default();
        v.push(
            &ok_stream(&cat, start),
            &mut outstanding,
            &cat,
            &cipher,
            &mut stats,
        );
        assert_eq!(stats.failures, 0);
        assert_eq!(stats.rung_mismatches, 0);
        assert_eq!(stats.verified_bytes, cat.file_size());
    }

    #[test]
    fn wrong_rung_claim_is_a_verification_failure() {
        // The delivered chunk is oracle-correct — but it belongs to
        // rung 0, while the client claimed rung 2. The manifest check
        // must fire even though every body byte matches.
        let cat = catalog();
        let m = manifest(&cat);
        let (rung0_chunk, _) = m.rung_range(1, 2, 0);
        assert!(!m.in_rung(rung0_chunk, 1, 2, 2));
        let mut outstanding: VecDeque<Expected> = VecDeque::new();
        outstanding.push_back(Expected::claimed(
            rung0_chunk,
            0,
            RungClaim {
                title: 1,
                seg: 2,
                rung: 2,
            },
        ));
        let cipher = RecordCipher::new(b"0123456789abcdef", 1);
        let mut v = StreamVerifier::with_manifest(m);
        let mut stats = VerifyStats::default();
        v.push(
            &ok_stream(&cat, rung0_chunk),
            &mut outstanding,
            &cat,
            &cipher,
            &mut stats,
        );
        assert_eq!(stats.rung_mismatches, 1);
        assert!(stats.failures >= 1, "wrong rung counts as a failure");
    }

    #[test]
    fn claims_are_ignored_without_a_manifest() {
        // A plain verifier can't check claims; bodies still verify.
        let cat = catalog();
        let m = manifest(&cat);
        let (chunk, _) = m.rung_range(0, 0, 0);
        let mut outstanding: VecDeque<Expected> = VecDeque::new();
        outstanding.push_back(Expected::claimed(
            chunk,
            0,
            RungClaim {
                title: 3,
                seg: 1,
                rung: 2,
            },
        ));
        let cipher = RecordCipher::new(b"0123456789abcdef", 1);
        let mut v = StreamVerifier::new();
        let mut stats = VerifyStats::default();
        v.push(
            &ok_stream(&cat, chunk),
            &mut outstanding,
            &cat,
            &cipher,
            &mut stats,
        );
        assert_eq!(stats.failures, 0);
        assert_eq!(stats.rung_mismatches, 0);
    }
}
