//! Adaptive-bitrate (ABR) client logic: per-session rung selection,
//! the virtual playout buffer, and the on-off fetch cadence.
//!
//! One [`AbrSession`] per client walks a title's segments in playout
//! order. For every segment it picks a quality rung (buffer-based,
//! rate-based, or fixed), fetches that rung's chunk range from the
//! manifest one `GET /chunk/<id>` at a time, credits the virtual
//! playout buffer on segment completion, and — the traffic shape the
//! paper's steady ACK clock never sees — *pauses* fetching when the
//! buffer is full, resuming only after playback drains it below the
//! resume threshold. That pause/resume cycle is DASH's on-off burst
//! pattern; what it does to DMA-pool occupancy and the fetch
//! watermark is the `ablation_abr` question.
//!
//! Every rung decision is appended to a per-session trace with
//! integer-quantized inputs, so two runs of one seed must produce
//! byte-identical traces (asserted in `tests/abr.rs`).

use dcn_obs::qoe::{PlayoutSim, QoeStats};
use dcn_simcore::Nanos;
use dcn_store::{AbrManifest, FileId};

/// Rung-selection policy.
#[derive(Clone, Copy, PartialEq, Eq, Debug)]
pub enum AbrPolicy {
    /// Always request rung `r` (clamped to the ladder) — the
    /// non-adaptive control each adaptive variant is compared to.
    Fixed(usize),
    /// BBA-style: map buffer level linearly onto the ladder, capped
    /// at the highest rung the throughput estimate can support with
    /// `headroom` (never bet more than the pipe has shown).
    BufferBased,
    /// Throughput-driven: highest rung whose bitrate fits within
    /// `safety × estimate`, with up-switch hysteresis (climb one rung
    /// only after `up_hysteresis` consecutive supporting segments;
    /// fall immediately).
    RateBased,
}

/// ABR knobs. Thresholds are in buffered-playout time; sensible
/// defaults assume the manifest's 50 ms eval segments.
#[derive(Clone, Copy, Debug)]
pub struct AbrConfig {
    pub policy: AbrPolicy,
    /// Playback starts (and restarts after a stall) at this level.
    pub startup: Nanos,
    /// Stop fetching at/above this level (the "off" phase)…
    pub target: Nanos,
    /// …and resume below this one.
    pub resume: Nanos,
    /// Rate-based affordability factor (< 1 leaves margin).
    pub safety: f64,
    /// Buffer-based cap factor (> 1: optimism the buffer can absorb).
    pub headroom: f64,
    /// Consecutive supporting segments before an up-switch.
    pub up_hysteresis: u32,
    /// EWMA weight of the newest throughput sample.
    pub est_alpha: f64,
}

impl AbrConfig {
    #[must_use]
    pub fn buffer_based() -> Self {
        AbrConfig {
            policy: AbrPolicy::BufferBased,
            ..Self::rate_based()
        }
    }

    #[must_use]
    pub fn rate_based() -> Self {
        AbrConfig {
            policy: AbrPolicy::RateBased,
            startup: Nanos::from_millis(100),
            target: Nanos::from_millis(250),
            resume: Nanos::from_millis(150),
            safety: 0.8,
            headroom: 2.0,
            up_hysteresis: 2,
            est_alpha: 0.3,
        }
    }

    #[must_use]
    pub fn fixed(rung: usize) -> Self {
        AbrConfig {
            policy: AbrPolicy::Fixed(rung),
            ..Self::rate_based()
        }
    }
}

/// One rung decision, quantized to integers so the serialized trace
/// is byte-stable across replays.
#[derive(Clone, Copy, PartialEq, Eq, Debug)]
pub struct AbrDecision {
    pub at: Nanos,
    /// Monotone playout index (wraps over `segs_per_title` only in
    /// the manifest coordinates, never here).
    pub seg_index: u64,
    pub rung: u8,
    /// Throughput estimate at decision time, kbit/s (0 = no sample).
    pub est_kbps: u64,
    /// Buffer level at decision time, ms.
    pub buffer_ms: u64,
}

impl AbrDecision {
    /// One canonical trace line (replay identity is byte equality).
    #[must_use]
    pub fn trace_line(&self, client: usize) -> String {
        format!(
            "c{client} t={} seg={} rung={} est_kbps={} buf_ms={}\n",
            self.at.as_nanos(),
            self.seg_index,
            self.rung,
            self.est_kbps,
            self.buffer_ms
        )
    }
}

/// What the client should do next.
#[derive(Clone, Copy, PartialEq, Eq, Debug)]
pub enum FetchStep {
    /// Request this chunk now.
    Chunk(FileId),
    /// Buffer full: the "off" phase. Ask again at the given time.
    PausedUntil(Nanos),
}

/// In-progress segment download.
#[derive(Clone, Copy, Debug)]
struct SegFetch {
    /// Manifest coordinates.
    seg: u32,
    rung: usize,
    start: FileId,
    count: u32,
    /// Chunks completed so far.
    done: u32,
    /// Chunks requested so far.
    requested: u32,
    started_at: Nanos,
}

/// Per-client adaptive-streaming state machine.
pub struct AbrSession {
    manifest: AbrManifest,
    cfg: AbrConfig,
    title: u64,
    /// Monotone playout position; manifest segment = this mod
    /// `segs_per_title` (looping channel).
    next_seg: u64,
    rung: usize,
    cur: Option<SegFetch>,
    play: PlayoutSim,
    /// EWMA throughput estimate, bits/sec (0 = no sample yet).
    est_bps: f64,
    up_votes: u32,
    pub decisions: Vec<AbrDecision>,
}

impl AbrSession {
    #[must_use]
    pub fn new(manifest: AbrManifest, cfg: AbrConfig, title: u64) -> Self {
        assert!(title < manifest.n_titles());
        assert!(cfg.startup <= cfg.target && cfg.resume < cfg.target);
        AbrSession {
            manifest,
            cfg,
            title,
            next_seg: 0,
            rung: 0,
            cur: None,
            play: PlayoutSim::new(cfg.startup),
            est_bps: 0.0,
            up_votes: 0,
            decisions: Vec::new(),
        }
    }

    #[must_use]
    pub fn manifest(&self) -> &AbrManifest {
        &self.manifest
    }

    #[must_use]
    pub fn title(&self) -> u64 {
        self.title
    }

    /// Manifest coordinates + rung of the in-flight segment (what the
    /// verifier's rung claim is built from).
    #[must_use]
    pub fn current_claim(&self) -> Option<(u64, u32, usize)> {
        self.cur.map(|c| (self.title, c.seg, c.rung))
    }

    /// The startup-delay clock starts with the first request.
    pub fn note_first_request(&mut self, now: Nanos) {
        self.play.on_first_request(now);
    }

    /// Highest rung whose bitrate fits in `factor ×` the current
    /// estimate; rung 0 before any sample.
    fn max_affordable(&self, factor: f64) -> usize {
        if self.est_bps <= 0.0 {
            return 0;
        }
        let budget = factor * self.est_bps;
        (0..self.manifest.n_rungs())
            .rev()
            .find(|&r| self.manifest.bitrate_bps(r) <= budget)
            .unwrap_or(0)
    }

    /// Pick the rung for the next segment at `now` and record the
    /// decision.
    fn decide(&mut self, now: Nanos) -> usize {
        let level = self.play.level_at(now);
        let n = self.manifest.n_rungs();
        let chosen = match self.cfg.policy {
            AbrPolicy::Fixed(r) => r.min(n - 1),
            AbrPolicy::BufferBased => {
                let by_buffer = ((level.as_nanos() as u128 * n as u128)
                    / self.cfg.target.as_nanos().max(1) as u128)
                    .min(n as u128 - 1) as usize;
                by_buffer.min(self.max_affordable(self.cfg.headroom))
            }
            AbrPolicy::RateBased => {
                let afford = self.max_affordable(self.cfg.safety);
                if afford > self.rung {
                    self.up_votes += 1;
                    if self.up_votes >= self.cfg.up_hysteresis {
                        self.up_votes = 0;
                        self.rung + 1 // climb one rung at a time
                    } else {
                        self.rung
                    }
                } else {
                    self.up_votes = 0;
                    afford
                }
            }
        };
        self.rung = chosen;
        self.decisions.push(AbrDecision {
            at: now,
            seg_index: self.next_seg,
            rung: chosen as u8,
            est_kbps: (self.est_bps / 1000.0) as u64,
            buffer_ms: level.as_nanos() / 1_000_000,
        });
        chosen
    }

    /// The client is ready to issue a request: next chunk of the
    /// current segment, the first chunk of a freshly decided segment,
    /// or a pause when the buffer is full.
    pub fn next_fetch(&mut self, now: Nanos) -> FetchStep {
        if let Some(cur) = &mut self.cur {
            debug_assert!(cur.requested < cur.count, "one request outstanding");
            let id = FileId(cur.start.0 + u64::from(cur.requested));
            cur.requested += 1;
            return FetchStep::Chunk(id);
        }
        // Segment boundary: the on-off gate. Only a started session
        // pauses — before playback the buffer never drains, and the
        // point of startup is to fill it as fast as possible.
        let level = self.play.level_at(now);
        if self.play.started() && level >= self.cfg.target {
            // Playback drains 1 s of media per second: the level hits
            // `resume` exactly `level - resume` from now.
            return FetchStep::PausedUntil(now + (level - self.cfg.resume));
        }
        let rung = self.decide(now);
        let seg = (self.next_seg % u64::from(self.manifest.segs_per_title())) as u32;
        self.next_seg += 1;
        let (start, count) = self.manifest.rung_range(self.title, seg, rung);
        self.cur = Some(SegFetch {
            seg,
            rung,
            start,
            count,
            done: 0,
            requested: 1,
            started_at: now,
        });
        FetchStep::Chunk(start)
    }

    /// A chunk response completed at `now`. Returns true when it
    /// finished the whole segment (buffer credited, estimate
    /// updated).
    pub fn on_chunk_done(&mut self, now: Nanos) -> bool {
        let Some(cur) = &mut self.cur else {
            return false;
        };
        cur.done += 1;
        if cur.done < cur.count {
            return false;
        }
        let cur = self.cur.take().expect("checked");
        let bytes = self.manifest.seg_bytes(cur.rung);
        let dt = now.saturating_sub(cur.started_at).max(Nanos(1));
        let sample_bps = bytes as f64 * 8.0 / dt.as_secs_f64();
        self.est_bps = if self.est_bps <= 0.0 {
            sample_bps
        } else {
            self.cfg.est_alpha * sample_bps + (1.0 - self.cfg.est_alpha) * self.est_bps
        };
        self.play.on_segment(
            now,
            self.manifest.seg_duration(),
            self.manifest.bitrate_bps(cur.rung),
            cur.rung,
        );
        true
    }

    /// Down-switches in the decision trace (rung strictly below the
    /// previous decision's).
    #[must_use]
    pub fn downswitches(&self) -> u64 {
        self.decisions
            .windows(2)
            .filter(|w| w[1].rung < w[0].rung)
            .count() as u64
    }

    /// Close the session and read out its QoE.
    #[must_use]
    pub fn finish(self, now: Nanos) -> QoeStats {
        self.play.finish(now)
    }

    /// Current buffer level (books elapsed playout).
    #[must_use]
    pub fn buffer_level(&mut self, now: Nanos) -> Nanos {
        self.play.level_at(now)
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use dcn_store::Catalog;

    fn manifest() -> AbrManifest {
        let cat = Catalog::new(10_000, 300 * 1024, 4, 7);
        AbrManifest::carve(&cat, &[1, 2, 4, 8], 16, Nanos::from_millis(50))
    }

    /// Drive a session through whole segments at a synthetic
    /// throughput (bytes/sec), returning fetch→completion times.
    fn run_segments(s: &mut AbrSession, n: usize, bps: f64, mut now: Nanos) -> Nanos {
        s.note_first_request(now);
        for _ in 0..n {
            loop {
                match s.next_fetch(now) {
                    FetchStep::Chunk(_) => {
                        now += Nanos::from_secs_f64(s.manifest.chunk_size() as f64 / bps);
                        if s.on_chunk_done(now) {
                            break;
                        }
                    }
                    FetchStep::PausedUntil(t) => now = t,
                }
            }
        }
        now
    }

    #[test]
    fn first_segment_is_lowest_rung() {
        let mut s = AbrSession::new(manifest(), AbrConfig::rate_based(), 0);
        s.note_first_request(Nanos::ZERO);
        match s.next_fetch(Nanos::ZERO) {
            FetchStep::Chunk(f) => {
                let (start, _) = s.manifest.rung_range(0, 0, 0);
                assert_eq!(f, start, "no estimate yet ⇒ rung 0");
            }
            other => panic!("expected a chunk, got {other:?}"),
        }
        assert_eq!(s.decisions[0].rung, 0);
        assert_eq!(s.decisions[0].est_kbps, 0);
    }

    #[test]
    fn on_off_pause_resumes_at_the_resume_level() {
        let mut s = AbrSession::new(manifest(), AbrConfig::fixed(0), 0);
        // Infinite-speed network: every chunk completes instantly, so
        // the buffer fills to the target and the session must pause.
        let mut now = Nanos::ZERO;
        s.note_first_request(now);
        let pause_at = loop {
            match s.next_fetch(now) {
                FetchStep::Chunk(_) => {
                    now += Nanos(1);
                    s.on_chunk_done(now);
                }
                FetchStep::PausedUntil(t) => break t,
            }
        };
        let level = s.buffer_level(now);
        assert!(level >= s.cfg.target, "paused only at/above target");
        assert_eq!(
            pause_at,
            now + (level - s.cfg.resume),
            "wake exactly when playback drains to the resume level"
        );
        // At the wake time the gate opens again.
        match s.next_fetch(pause_at) {
            FetchStep::Chunk(_) => {}
            other => panic!("expected resumed fetch, got {other:?}"),
        }
    }

    #[test]
    fn segment_indices_are_monotone() {
        let mut s = AbrSession::new(manifest(), AbrConfig::buffer_based(), 1);
        // Fast enough to climb, slow enough to keep draining.
        run_segments(&mut s, 40, 40e6, Nanos::ZERO);
        for (i, d) in s.decisions.iter().enumerate() {
            assert_eq!(d.seg_index, i as u64, "playout order, no skips");
        }
        assert!(s.decisions.len() >= 40);
    }
}
