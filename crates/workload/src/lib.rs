//! # dcn-workload — the evaluation harness
//!
//! Wires a server (Atlas or a conventional-stack variant), the §4
//! testbed network (40 GbE switch + delay middlebox), and a fleet of
//! weighttp-style clients into one deterministic discrete-event run,
//! then reads out every metric the paper plots: network throughput,
//! CPU utilization, DRAM read/write throughput, the read:network
//! ratio, and LLC-miss rates.
//!
//! At full fidelity the fleet **verifies content end to end**: every
//! response body is reassembled from TCP, (for encrypted runs)
//! de-framed and GCM-opened with the session key, and compared
//! byte-for-byte against the catalog's PRF oracle. A stack that
//! corrupts, reorders, or mis-encrypts anything fails the run.

pub mod abr;
pub mod fleet;
pub mod multi;
pub mod runner;
pub mod verify;

pub use abr::{AbrConfig, AbrDecision, AbrPolicy, AbrSession, FetchStep};
pub use fleet::{AbrReadout, ClientFleet, FleetConfig};
pub use multi::{BurstOut, FailoverPlan, MultiFleet, NeedStep, RequestNeed};
pub use runner::{
    run_scenario, run_scenario_observed, FaultMetrics, ObsOptions, ObsReport, PoolOcc, RunMetrics,
    Scenario, ServerKind, TierMetrics, VideoServer,
};
pub use verify::{Expected, RungClaim, StreamVerifier, VerifyStats};
