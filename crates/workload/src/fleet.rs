//! The client fleet: protocol + application + verification.

use crate::abr::{AbrConfig, AbrSession, FetchStep};
use crate::verify::{Expected, RungClaim, StreamVerifier, VerifyStats};
use dcn_atlas::server::parse_frame;
use dcn_crypto::RecordCipher;
use dcn_httpd::{chunk_path, parser::build_get, RequestDriver};
use dcn_netdev::WireFrame;
use dcn_obs::qoe::{QoeStats, QoeSummary};
use dcn_packet::{FlowId, Ipv4Addr, MacAddr, SeqNumber};
use dcn_simcore::{Nanos, SimRng, TimeBuckets};
use dcn_store::{AbrManifest, Catalog};
use dcn_tcpstack::{ClientConn, Endpoint};
use std::collections::{HashMap, VecDeque};

/// Workload shape.
#[derive(Clone, Copy, Debug)]
pub struct FleetConfig {
    pub n_clients: usize,
    /// 0% BC (uniform over the catalog) vs 100% BC (hot set).
    pub cacheable: bool,
    /// Hot-set size for the cacheable workload.
    pub hot_files: u64,
    /// Verify every body byte against the catalog oracle (full
    /// fidelity runs only).
    pub verify: bool,
    pub server_ip: Ipv4Addr,
    pub server_port: u16,
    /// The first `slowloris` clients are attackers: they complete the
    /// handshake, dribble a truncated request head, and go silent —
    /// the server's header-read timeout must reap them. Excluded from
    /// `live_fraction`.
    pub slowloris: usize,
    /// Adaptive-streaming mode: every (non-attacker) client runs an
    /// [`AbrSession`] over the manifest instead of drawing files from
    /// the popularity distribution. None = the classic fixed-rate
    /// weighttp workload.
    pub abr: Option<AbrConfig>,
    /// Zipf(θ) popularity over the whole catalog, rank-permuted so
    /// the popular head is scattered across the id space. Overrides
    /// `cacheable`; the million-object tiered-catalog workload.
    pub zipf: Option<f64>,
    /// Rank → object-id permutation seed for the Zipf workload; must
    /// match the server's `TierConfig::perm_seed` so the tier's seeded
    /// hot set covers the same popular head the clients hammer.
    pub zipf_perm_seed: u64,
}

impl Default for FleetConfig {
    fn default() -> Self {
        FleetConfig {
            n_clients: 64,
            cacheable: false,
            hot_files: 64,
            verify: true,
            server_ip: Ipv4Addr::new(10, 0, 0, 1),
            server_port: 80,
            slowloris: 0,
            abr: None,
            zipf: None,
            zipf_perm_seed: 0x007E_1A11,
        }
    }
}

/// Application behaviour of one fleet member.
#[derive(Clone, Copy, PartialEq, Eq, Debug)]
enum ClientMode {
    Normal,
    /// Sends a truncated request head after the handshake, then
    /// nothing — a connection-slot squatter.
    Slowloris,
}

struct Client {
    conn: ClientConn,
    driver: RequestDriver,
    cipher: RecordCipher,
    verifier: StreamVerifier,
    /// Requested files, front = response currently arriving.
    outstanding: VecDeque<Expected>,
    done_at_least_one: bool,
    first_request_sent: bool,
    mode: ClientMode,
    /// Send time of the oldest unanswered request (TTFB clock; spans
    /// 503 retries, so backoff shows up in the latency tail).
    ttfb_pending: Option<Nanos>,
    /// Adaptive-streaming state (Some iff `FleetConfig::abr`).
    abr: Option<AbrSession>,
}

/// The fleet.
pub struct ClientFleet {
    cfg: FleetConfig,
    catalog: Catalog,
    clients: Vec<Client>,
    by_flow: HashMap<FlowId, usize>,
    /// Response-body bytes received per time bucket — the network
    /// goodput the paper's throughput panels plot.
    pub goodput: TimeBuckets,
    pub total_body_bytes: u64,
    pub responses_completed: u64,
    pub verify_stats: VerifyStats,
    /// Deferred re-requests scheduled by Retry-After backoff:
    /// (due time, client index), fired by the harness via
    /// [`ClientFleet::fire_retries`].
    pending_retries: std::collections::BTreeSet<(Nanos, usize)>,
    /// Retries actually re-sent after a 503 backoff.
    pub retries_fired: u64,
    /// Time-to-first-body-byte samples (request send → first body
    /// byte), including any 503 backoff.
    pub ttfb: Vec<Nanos>,
    /// The ABR manifest (Some iff `FleetConfig::abr`).
    manifest: Option<AbrManifest>,
    /// On-off pauses: (resume time, client index), fired by the
    /// harness via [`ClientFleet::fire_paced`] — the same deferred-
    /// wake discipline as `pending_retries`.
    pending_paced: std::collections::BTreeSet<(Nanos, usize)>,
    /// Fetches re-started after an on-off pause.
    pub paced_fired: u64,
}

/// End-of-run ABR readout: fleet QoE plus the canonical decision
/// trace (byte-identical across replays of one seed).
#[derive(Clone, Debug, Default)]
pub struct AbrReadout {
    pub qoe: QoeSummary,
    /// Rung decisions across the fleet.
    pub decisions: u64,
    /// Decisions strictly below the previous one (quality drops).
    pub downswitches: u64,
    /// Concatenated per-client decision trace lines.
    pub trace: String,
    /// On-off "on" edges: fetches resumed after a full-buffer pause
    /// (how many synchronized bursts the server absorbed).
    pub paced_wakes: u64,
}

/// Frames a client wants transmitted (they enter the middlebox).
pub struct ClientTx {
    pub flow: FlowId,
    pub frames: Vec<WireFrame>,
}

impl ClientFleet {
    #[must_use]
    pub fn new(cfg: FleetConfig, catalog: Catalog, _seed: u64) -> Self {
        let manifest = cfg.abr.map(|_| AbrManifest::eval(&catalog));
        ClientFleet {
            cfg,
            catalog,
            clients: Vec::new(),
            by_flow: HashMap::new(),
            goodput: TimeBuckets::new(Nanos::from_millis(1)),
            total_body_bytes: 0,
            responses_completed: 0,
            verify_stats: VerifyStats::default(),
            pending_retries: std::collections::BTreeSet::new(),
            retries_fired: 0,
            ttfb: Vec::new(),
            manifest,
            pending_paced: std::collections::BTreeSet::new(),
            paced_fired: 0,
        }
    }

    #[must_use]
    pub fn n_clients(&self) -> usize {
        self.clients.len()
    }

    fn endpoint_of(idx: usize, _cfg: &FleetConfig) -> Endpoint {
        // Clients spread over many source IPs and ports, as two load
        // generator machines with many sockets would.
        let ip = Ipv4Addr::new(10, 1, (idx / 250) as u8, (idx % 250) as u8 + 1);
        Endpoint {
            mac: MacAddr::from_host_id(1000 + idx as u32),
            ip,
            port: 10_000 + (idx % 50_000) as u16,
        }
    }

    /// Spawn the next client: returns its SYN.
    pub fn spawn(&mut self, idx: usize, seed: u64) -> ClientTx {
        assert_eq!(idx, self.clients.len(), "spawn in order");
        let local = Self::endpoint_of(idx, &self.cfg);
        let remote = Endpoint {
            mac: MacAddr::from_host_id(1),
            ip: self.cfg.server_ip,
            port: self.cfg.server_port,
        };
        let mut rng = SimRng::new(seed ^ (idx as u64) << 20);
        let iss = SeqNumber(rng.next_u64() as u32);
        let (conn, syn) = ClientConn::connect(local, remote, iss, 4 << 20);
        let flow = conn.flow();
        let driver = if let Some(theta) = self.cfg.zipf {
            RequestDriver::zipf_perm(
                self.catalog.n_files(),
                theta,
                self.cfg.zipf_perm_seed,
                rng.fork(1),
            )
        } else if self.cfg.cacheable {
            RequestDriver::cacheable(self.catalog.n_files(), self.cfg.hot_files, rng.fork(1))
        } else {
            RequestDriver::uncachable(self.catalog.n_files(), rng.fork(1))
        };
        // Same per-session dummy-key derivation as the server (§4.2's
        // TLS emulation: handshake out of scope, keys pre-shared).
        let mut key = [0u8; 16];
        dcn_simcore::prf_bytes(u64::from(flow.rss_hash()) ^ 0x6B65_7931, 0, &mut key);
        let cipher = RecordCipher::new(&key, flow.rss_hash());
        // ABR clients each stream one seeded-random title; the
        // verifier carries the manifest so every response is checked
        // against the claimed rung's chunk range.
        let abr = self.cfg.abr.map(|acfg| {
            let m = self.manifest.as_ref().expect("manifest built with abr");
            AbrSession::new(m.clone(), acfg, rng.gen_range(0, m.n_titles()))
        });
        let verifier = match (&self.manifest, self.cfg.verify) {
            (Some(m), true) => StreamVerifier::with_manifest(m.clone()),
            _ => StreamVerifier::new(),
        };
        self.clients.push(Client {
            conn,
            driver,
            cipher,
            verifier,
            outstanding: VecDeque::new(),
            done_at_least_one: false,
            first_request_sent: false,
            mode: if idx < self.cfg.slowloris {
                ClientMode::Slowloris
            } else {
                ClientMode::Normal
            },
            ttfb_pending: None,
            abr,
        });
        self.by_flow.insert(flow, idx);
        ClientTx {
            flow,
            frames: vec![frame_of(syn.headers, syn.payload)],
        }
    }

    /// A burst of frames arrived at the clients (one flow per burst;
    /// `flow` is the server→client direction). Returns frames the
    /// client sends back (ACKs, the next request).
    pub fn on_burst(
        &mut self,
        now: Nanos,
        flow: FlowId,
        frames: Vec<WireFrame>,
    ) -> Option<ClientTx> {
        let &idx = self.by_flow.get(&flow.reversed())?;
        let client = &mut self.clients[idx];
        let parsed: Vec<_> = frames
            .iter()
            .filter_map(|f| {
                let (_, tcp, payload) = parse_frame(f)?;
                // Clients materialize the payload: they verify every
                // delivered byte, so an owned copy is the product
                // here, not hot-path waste.
                Some((tcp, payload.to_vec()))
            })
            .collect();
        let acks = client.conn.on_burst(now, parsed);
        let mut out: Vec<WireFrame> = acks
            .into_iter()
            .map(|f| frame_of(f.headers, f.payload))
            .collect();

        // Application layer: consume delivered stream bytes.
        let delivered = client.conn.take_inbox();
        let mut completed = 0;
        if !delivered.is_empty() {
            let body_before = client.driver.body_bytes;
            completed = client.driver.on_bytes(&delivered);
            let body_new = client.driver.body_bytes - body_before;
            self.goodput.add(now, body_new as f64);
            self.total_body_bytes += body_new;
            self.responses_completed += completed;
            if body_new > 0 {
                if let Some(t0) = client.ttfb_pending.take() {
                    self.ttfb.push(now.saturating_sub(t0));
                }
            }
            if let Some(backoff_ms) = client.driver.take_retry_after() {
                // Honour the server's Retry-After: park the re-request
                // until the harness fires it.
                self.pending_retries
                    .insert((now + Nanos::from_millis(backoff_ms), idx));
            }
            if self.cfg.verify {
                client.verifier.push(
                    &delivered,
                    &mut client.outstanding,
                    &self.catalog,
                    &client.cipher,
                    &mut self.verify_stats,
                );
            }
            if completed > 0 {
                client.done_at_least_one = true;
                // Each completed response is one manifest chunk;
                // credit the playout buffer before deciding the next
                // fetch below.
                if let Some(abr) = client.abr.as_mut() {
                    for _ in 0..completed {
                        abr.on_chunk_done(now);
                    }
                }
            }
        }
        // Fire follow-up requests: one per completed response, plus
        // the very first request when the handshake completes.
        let client = &mut self.clients[idx];
        let established = matches!(
            client.conn.state,
            dcn_tcpstack::client::ClientState::Established
        );
        if client.mode == ClientMode::Slowloris {
            // The attack: a truncated request head, then silence. The
            // connection keeps ACKing (it is alive at the TCP layer)
            // but never completes a request.
            if !client.first_request_sent && established {
                client.first_request_sent = true;
                let f = client.conn.send(b"GET /chunk/00000000 HT".to_vec());
                out.push(frame_of(f.headers, f.payload));
            }
            return Some(ClientTx {
                flow: flow.reversed(),
                frames: out,
            });
        }
        let mut to_send = completed;
        if !client.first_request_sent && established {
            client.first_request_sent = true;
            to_send += 1;
        }
        if established {
            for _ in 0..to_send {
                out.extend(self.next_request(now, idx));
            }
        }
        Some(ClientTx {
            flow: flow.reversed(),
            frames: out,
        })
    }

    /// Issue the client's next request. None when its ABR session is
    /// in the "off" phase — the resume is parked in `pending_paced`
    /// and fired by the harness.
    fn next_request(&mut self, now: Nanos, idx: usize) -> Option<WireFrame> {
        let verify = self.cfg.verify;
        let client = &mut self.clients[idx];
        let (file, claim) = if let Some(abr) = client.abr.as_mut() {
            abr.note_first_request(now);
            match abr.next_fetch(now) {
                FetchStep::Chunk(f) => {
                    client.driver.request_file(f);
                    let claim = abr.current_claim().map(|(title, seg, rung)| RungClaim {
                        title,
                        seg,
                        rung,
                    });
                    (f, claim)
                }
                FetchStep::PausedUntil(at) => {
                    self.pending_paced.insert((at, idx));
                    return None;
                }
            }
        } else {
            (client.driver.next_file(), None)
        };
        if verify {
            client.outstanding.push_back(Expected {
                file,
                base: 0,
                claim,
            });
        }
        if client.ttfb_pending.is_none() {
            client.ttfb_pending = Some(now);
        }
        let req = build_get(&chunk_path(file), "cdn.test");
        let f = client.conn.send(req);
        Some(frame_of(f.headers, f.payload))
    }

    /// Earliest pending Retry-After deadline (for harness scheduling).
    #[must_use]
    pub fn next_retry_at(&self) -> Option<Nanos> {
        self.pending_retries.iter().next().map(|&(at, _)| at)
    }

    /// Re-send shed requests whose 503 backoff has expired. Returns
    /// one ClientTx per retried client.
    pub fn fire_retries(&mut self, now: Nanos) -> Vec<ClientTx> {
        let mut txs = Vec::new();
        while let Some(&(at, idx)) = self.pending_retries.iter().next() {
            if at > now {
                break;
            }
            self.pending_retries.remove(&(at, idx));
            let client = &mut self.clients[idx];
            if !matches!(
                client.conn.state,
                dcn_tcpstack::client::ClientState::Established
            ) {
                continue; // reset meanwhile; nothing to retry on
            }
            // Same file, same outstanding entry: the verifier's
            // expected front still describes this request.
            let Some(file) = client.driver.current_file() else {
                continue;
            };
            let req = build_get(&chunk_path(file), "cdn.test");
            let f = client.conn.send(req);
            let flow = client.conn.flow();
            self.retries_fired += 1;
            txs.push(ClientTx {
                flow,
                frames: vec![frame_of(f.headers, f.payload)],
            });
        }
        txs
    }

    /// Earliest on-off resume deadline (for harness scheduling).
    #[must_use]
    pub fn next_paced_at(&self) -> Option<Nanos> {
        self.pending_paced.iter().next().map(|&(at, _)| at)
    }

    /// Resume fetching for ABR clients whose playout buffer has
    /// drained to the resume level. Returns one ClientTx per resumed
    /// client — the "on" edge of the on-off burst.
    pub fn fire_paced(&mut self, now: Nanos) -> Vec<ClientTx> {
        let mut txs = Vec::new();
        while let Some(&(at, idx)) = self.pending_paced.iter().next() {
            if at > now {
                break;
            }
            self.pending_paced.remove(&(at, idx));
            if !matches!(
                self.clients[idx].conn.state,
                dcn_tcpstack::client::ClientState::Established
            ) {
                continue; // reset meanwhile; the session is dead
            }
            if let Some(frame) = self.next_request(now, idx) {
                self.paced_fired += 1;
                let flow = self.clients[idx].conn.flow();
                txs.push(ClientTx {
                    flow,
                    frames: vec![frame],
                });
            }
        }
        txs
    }

    /// Close every ABR session and aggregate the fleet's QoE plus the
    /// canonical decision trace. None for fixed-rate fleets.
    pub fn finish_abr(&mut self, now: Nanos) -> Option<AbrReadout> {
        self.cfg.abr?;
        let mut out = AbrReadout::default();
        let mut stats: Vec<QoeStats> = Vec::new();
        for (i, c) in self.clients.iter_mut().enumerate() {
            let Some(abr) = c.abr.take() else { continue };
            out.decisions += abr.decisions.len() as u64;
            out.downswitches += abr.downswitches();
            for d in &abr.decisions {
                out.trace.push_str(&d.trace_line(i));
            }
            stats.push(abr.finish(now));
        }
        out.qoe = QoeSummary::aggregate(&stats, now);
        out.paced_wakes = self.paced_fired;
        Some(out)
    }

    /// Clients whose connection the server reset (refused SYNs plus
    /// slow-client aborts).
    #[must_use]
    pub fn resets_received(&self) -> u64 {
        self.clients
            .iter()
            .filter(|c| c.conn.reset_received)
            .count() as u64
    }

    /// 503 load-shed responses observed across the fleet.
    #[must_use]
    pub fn rejections_503(&self) -> u64 {
        self.clients.iter().map(|c| c.driver.rejections_503).sum()
    }

    /// p99 time-to-first-body-byte in milliseconds (0 when no sample).
    #[must_use]
    pub fn ttfb_p99_ms(&self) -> f64 {
        if self.ttfb.is_empty() {
            return 0.0;
        }
        let mut v: Vec<u64> = self.ttfb.iter().map(|n| n.as_nanos()).collect();
        v.sort_unstable();
        let i = ((v.len() - 1) as f64 * 0.99).round() as usize;
        v[i] as f64 / 1e6
    }

    /// Fraction of well-behaved clients that completed at least one
    /// response (liveness check for tests; slowloris attackers are
    /// excluded — they never complete by design).
    #[must_use]
    pub fn live_fraction(&self) -> f64 {
        let normal: Vec<_> = self
            .clients
            .iter()
            .filter(|c| c.mode == ClientMode::Normal)
            .collect();
        if normal.is_empty() {
            return 0.0;
        }
        normal.iter().filter(|c| c.done_at_least_one).count() as f64 / normal.len() as f64
    }

    /// Total dup-ACKs the fleet generated (loss diagnostics).
    #[must_use]
    pub fn dupacks(&self) -> u64 {
        self.clients.iter().map(|c| c.conn.dupacks_sent).sum()
    }
}

fn frame_of(headers: Vec<u8>, payload: Vec<u8>) -> WireFrame {
    WireFrame::single(headers, dcn_netdev::PayloadBytes::Real(payload))
}

#[cfg(test)]
mod tests {
    use super::*;
    use dcn_netdev::PayloadBytes;
    use dcn_store::FileId;

    fn catalog() -> Catalog {
        Catalog::new(1000, 300 * 1024, 4, 7)
    }

    #[test]
    fn spawn_emits_syn_and_registers_flow() {
        let mut fleet = ClientFleet::new(FleetConfig::default(), catalog(), 1);
        let tx = fleet.spawn(0, 1);
        assert_eq!(tx.frames.len(), 1);
        let (flow, tcp, _) = parse_frame(&tx.frames[0]).expect("parsable SYN");
        assert!(tcp.flags.contains(dcn_packet::TcpFlags::SYN));
        assert_eq!(flow, tx.flow);
        assert_eq!(fleet.n_clients(), 1);
    }

    #[test]
    fn clients_have_distinct_flows() {
        let mut fleet = ClientFleet::new(
            FleetConfig {
                n_clients: 500,
                ..FleetConfig::default()
            },
            catalog(),
            1,
        );
        let mut flows = std::collections::HashSet::new();
        for i in 0..500 {
            let tx = fleet.spawn(i, 1);
            assert!(flows.insert(tx.flow), "duplicate flow at client {i}");
        }
    }

    #[test]
    fn burst_for_unknown_flow_is_ignored() {
        let mut fleet = ClientFleet::new(FleetConfig::default(), catalog(), 1);
        fleet.spawn(0, 1);
        let bogus = dcn_packet::FlowId {
            src_ip: dcn_packet::Ipv4Addr::new(1, 2, 3, 4),
            dst_ip: dcn_packet::Ipv4Addr::new(5, 6, 7, 8),
            src_port: 1,
            dst_port: 2,
        };
        let frame = WireFrame::single(vec![0u8; 54], PayloadBytes::Real(vec![]));
        assert!(fleet.on_burst(Nanos::ZERO, bogus, vec![frame]).is_none());
    }

    #[test]
    fn verifier_counts_failures_on_corrupt_plaintext() {
        // Feed a hand-built response whose body does NOT match the
        // catalog oracle: the verifier must flag it.
        let cat = catalog();
        let mut outstanding: VecDeque<Expected> = VecDeque::new();
        outstanding.push_back(Expected::plain(FileId(3), 0));
        let cipher = RecordCipher::new(b"0123456789abcdef", 1);
        let mut v = StreamVerifier::new();
        let mut stats = VerifyStats::default();
        let mut stream = dcn_httpd::response::response_header(
            dcn_httpd::response::ResponseInfo::Ok { body_len: 100 },
            false,
        );
        stream.extend_from_slice(&[0xEE; 100]); // wrong content
        v.push(&stream, &mut outstanding, &cat, &cipher, &mut stats);
        assert_eq!(stats.failures, 1);
        assert_eq!(stats.verified_bytes, 0);
    }

    #[test]
    fn verifier_accepts_oracle_plaintext() {
        let cat = catalog();
        let mut outstanding: VecDeque<Expected> = VecDeque::new();
        outstanding.push_back(Expected::plain(FileId(3), 0));
        let cipher = RecordCipher::new(b"0123456789abcdef", 1);
        let mut v = StreamVerifier::new();
        let mut stats = VerifyStats::default();
        let file_size = cat.file_size();
        let mut stream = dcn_httpd::response::response_header(
            dcn_httpd::response::ResponseInfo::Ok {
                body_len: file_size,
            },
            false,
        );
        let mut body = vec![0u8; file_size as usize];
        cat.expected(FileId(3), 0, &mut body);
        stream.extend_from_slice(&body);
        // Deliver in awkward fragment sizes.
        for chunk in stream.chunks(1013) {
            v.push(chunk, &mut outstanding, &cat, &cipher, &mut stats);
        }
        assert_eq!(stats.failures, 0);
        assert_eq!(stats.verified_bytes, file_size);
        assert!(outstanding.is_empty(), "response consumed");
    }
}
