//! The client fleet: protocol + application + verification.

use crate::verify::{Expected, StreamVerifier, VerifyStats};
use dcn_atlas::server::parse_frame;
use dcn_crypto::RecordCipher;
use dcn_httpd::{chunk_path, parser::build_get, RequestDriver};
use dcn_netdev::WireFrame;
use dcn_packet::{FlowId, Ipv4Addr, MacAddr, SeqNumber};
use dcn_simcore::{Nanos, SimRng, TimeBuckets};
use dcn_store::Catalog;
use dcn_tcpstack::{ClientConn, Endpoint};
use std::collections::{HashMap, VecDeque};

/// Workload shape.
#[derive(Clone, Copy, Debug)]
pub struct FleetConfig {
    pub n_clients: usize,
    /// 0% BC (uniform over the catalog) vs 100% BC (hot set).
    pub cacheable: bool,
    /// Hot-set size for the cacheable workload.
    pub hot_files: u64,
    /// Verify every body byte against the catalog oracle (full
    /// fidelity runs only).
    pub verify: bool,
    pub server_ip: Ipv4Addr,
    pub server_port: u16,
}

impl Default for FleetConfig {
    fn default() -> Self {
        FleetConfig {
            n_clients: 64,
            cacheable: false,
            hot_files: 64,
            verify: true,
            server_ip: Ipv4Addr::new(10, 0, 0, 1),
            server_port: 80,
        }
    }
}

struct Client {
    conn: ClientConn,
    driver: RequestDriver,
    cipher: RecordCipher,
    verifier: StreamVerifier,
    /// Requested files, front = response currently arriving.
    outstanding: VecDeque<Expected>,
    done_at_least_one: bool,
    first_request_sent: bool,
}

/// The fleet.
pub struct ClientFleet {
    cfg: FleetConfig,
    catalog: Catalog,
    clients: Vec<Client>,
    by_flow: HashMap<FlowId, usize>,
    /// Response-body bytes received per time bucket — the network
    /// goodput the paper's throughput panels plot.
    pub goodput: TimeBuckets,
    pub total_body_bytes: u64,
    pub responses_completed: u64,
    pub verify_stats: VerifyStats,
}

/// Frames a client wants transmitted (they enter the middlebox).
pub struct ClientTx {
    pub flow: FlowId,
    pub frames: Vec<WireFrame>,
}

impl ClientFleet {
    #[must_use]
    pub fn new(cfg: FleetConfig, catalog: Catalog, _seed: u64) -> Self {
        ClientFleet {
            cfg,
            catalog,
            clients: Vec::new(),
            by_flow: HashMap::new(),
            goodput: TimeBuckets::new(Nanos::from_millis(1)),
            total_body_bytes: 0,
            responses_completed: 0,
            verify_stats: VerifyStats::default(),
        }
    }

    #[must_use]
    pub fn n_clients(&self) -> usize {
        self.clients.len()
    }

    fn endpoint_of(idx: usize, _cfg: &FleetConfig) -> Endpoint {
        // Clients spread over many source IPs and ports, as two load
        // generator machines with many sockets would.
        let ip = Ipv4Addr::new(10, 1, (idx / 250) as u8, (idx % 250) as u8 + 1);
        Endpoint {
            mac: MacAddr::from_host_id(1000 + idx as u32),
            ip,
            port: 10_000 + (idx % 50_000) as u16,
        }
    }

    /// Spawn the next client: returns its SYN.
    pub fn spawn(&mut self, idx: usize, seed: u64) -> ClientTx {
        assert_eq!(idx, self.clients.len(), "spawn in order");
        let local = Self::endpoint_of(idx, &self.cfg);
        let remote = Endpoint {
            mac: MacAddr::from_host_id(1),
            ip: self.cfg.server_ip,
            port: self.cfg.server_port,
        };
        let mut rng = SimRng::new(seed ^ (idx as u64) << 20);
        let iss = SeqNumber(rng.next_u64() as u32);
        let (conn, syn) = ClientConn::connect(local, remote, iss, 4 << 20);
        let flow = conn.flow();
        let driver = if self.cfg.cacheable {
            RequestDriver::cacheable(self.catalog.n_files(), self.cfg.hot_files, rng.fork(1))
        } else {
            RequestDriver::uncachable(self.catalog.n_files(), rng.fork(1))
        };
        // Same per-session dummy-key derivation as the server (§4.2's
        // TLS emulation: handshake out of scope, keys pre-shared).
        let mut key = [0u8; 16];
        dcn_simcore::prf_bytes(u64::from(flow.rss_hash()) ^ 0x6B65_7931, 0, &mut key);
        let cipher = RecordCipher::new(&key, flow.rss_hash());
        self.clients.push(Client {
            conn,
            driver,
            cipher,
            verifier: StreamVerifier::new(),
            outstanding: VecDeque::new(),
            done_at_least_one: false,
            first_request_sent: false,
        });
        self.by_flow.insert(flow, idx);
        ClientTx {
            flow,
            frames: vec![frame_of(syn.headers, syn.payload)],
        }
    }

    /// A burst of frames arrived at the clients (one flow per burst;
    /// `flow` is the server→client direction). Returns frames the
    /// client sends back (ACKs, the next request).
    pub fn on_burst(
        &mut self,
        now: Nanos,
        flow: FlowId,
        frames: Vec<WireFrame>,
    ) -> Option<ClientTx> {
        let &idx = self.by_flow.get(&flow.reversed())?;
        let client = &mut self.clients[idx];
        let parsed: Vec<_> = frames
            .iter()
            .filter_map(|f| {
                let (_, tcp, payload) = parse_frame(f)?;
                Some((tcp, payload))
            })
            .collect();
        let acks = client.conn.on_burst(now, parsed);
        let mut out: Vec<WireFrame> = acks
            .into_iter()
            .map(|f| frame_of(f.headers, f.payload))
            .collect();

        // Application layer: consume delivered stream bytes.
        let delivered = client.conn.take_inbox();
        let mut completed = 0;
        if !delivered.is_empty() {
            let body_before = client.driver.body_bytes;
            completed = client.driver.on_bytes(&delivered);
            let body_new = client.driver.body_bytes - body_before;
            self.goodput.add(now, body_new as f64);
            self.total_body_bytes += body_new;
            self.responses_completed += completed;
            if self.cfg.verify {
                client.verifier.push(
                    &delivered,
                    &mut client.outstanding,
                    &self.catalog,
                    &client.cipher,
                    &mut self.verify_stats,
                );
            }
            if completed > 0 {
                client.done_at_least_one = true;
            }
        }
        // Fire follow-up requests: one per completed response, plus
        // the very first request when the handshake completes.
        let client = &mut self.clients[idx];
        let mut to_send = completed;
        if !client.first_request_sent
            && matches!(
                client.conn.state,
                dcn_tcpstack::client::ClientState::Established
            )
        {
            client.first_request_sent = true;
            to_send += 1;
        }
        for _ in 0..to_send {
            out.push(self.next_request(idx));
        }
        Some(ClientTx {
            flow: flow.reversed(),
            frames: out,
        })
    }

    fn next_request(&mut self, idx: usize) -> WireFrame {
        let verify = self.cfg.verify;
        let client = &mut self.clients[idx];
        let file = client.driver.next_file();
        if verify {
            client.outstanding.push_back((file, 0));
        }
        let req = build_get(&chunk_path(file), "cdn.test");
        let f = client.conn.send(req);
        frame_of(f.headers, f.payload)
    }

    /// Fraction of clients that completed at least one response
    /// (liveness check for tests).
    #[must_use]
    pub fn live_fraction(&self) -> f64 {
        if self.clients.is_empty() {
            return 0.0;
        }
        self.clients.iter().filter(|c| c.done_at_least_one).count() as f64
            / self.clients.len() as f64
    }

    /// Total dup-ACKs the fleet generated (loss diagnostics).
    #[must_use]
    pub fn dupacks(&self) -> u64 {
        self.clients.iter().map(|c| c.conn.dupacks_sent).sum()
    }
}

fn frame_of(headers: Vec<u8>, payload: Vec<u8>) -> WireFrame {
    WireFrame::single(headers, dcn_netdev::PayloadBytes::Real(payload))
}

#[cfg(test)]
mod tests {
    use super::*;
    use dcn_netdev::PayloadBytes;
    use dcn_store::FileId;

    fn catalog() -> Catalog {
        Catalog::new(1000, 300 * 1024, 4, 7)
    }

    #[test]
    fn spawn_emits_syn_and_registers_flow() {
        let mut fleet = ClientFleet::new(FleetConfig::default(), catalog(), 1);
        let tx = fleet.spawn(0, 1);
        assert_eq!(tx.frames.len(), 1);
        let (flow, tcp, _) = parse_frame(&tx.frames[0]).expect("parsable SYN");
        assert!(tcp.flags.contains(dcn_packet::TcpFlags::SYN));
        assert_eq!(flow, tx.flow);
        assert_eq!(fleet.n_clients(), 1);
    }

    #[test]
    fn clients_have_distinct_flows() {
        let mut fleet = ClientFleet::new(
            FleetConfig {
                n_clients: 500,
                ..FleetConfig::default()
            },
            catalog(),
            1,
        );
        let mut flows = std::collections::HashSet::new();
        for i in 0..500 {
            let tx = fleet.spawn(i, 1);
            assert!(flows.insert(tx.flow), "duplicate flow at client {i}");
        }
    }

    #[test]
    fn burst_for_unknown_flow_is_ignored() {
        let mut fleet = ClientFleet::new(FleetConfig::default(), catalog(), 1);
        fleet.spawn(0, 1);
        let bogus = dcn_packet::FlowId {
            src_ip: dcn_packet::Ipv4Addr::new(1, 2, 3, 4),
            dst_ip: dcn_packet::Ipv4Addr::new(5, 6, 7, 8),
            src_port: 1,
            dst_port: 2,
        };
        let frame = WireFrame::single(vec![0u8; 54], PayloadBytes::Real(vec![]));
        assert!(fleet.on_burst(Nanos::ZERO, bogus, vec![frame]).is_none());
    }

    #[test]
    fn verifier_counts_failures_on_corrupt_plaintext() {
        // Feed a hand-built response whose body does NOT match the
        // catalog oracle: the verifier must flag it.
        let cat = catalog();
        let mut outstanding: VecDeque<Expected> = VecDeque::new();
        outstanding.push_back((FileId(3), 0));
        let cipher = RecordCipher::new(b"0123456789abcdef", 1);
        let mut v = StreamVerifier::new();
        let mut stats = VerifyStats::default();
        let mut stream = dcn_httpd::response::response_header(
            dcn_httpd::response::ResponseInfo::Ok { body_len: 100 },
            false,
        );
        stream.extend_from_slice(&[0xEE; 100]); // wrong content
        v.push(&stream, &mut outstanding, &cat, &cipher, &mut stats);
        assert_eq!(stats.failures, 1);
        assert_eq!(stats.verified_bytes, 0);
    }

    #[test]
    fn verifier_accepts_oracle_plaintext() {
        let cat = catalog();
        let mut outstanding: VecDeque<Expected> = VecDeque::new();
        outstanding.push_back((FileId(3), 0));
        let cipher = RecordCipher::new(b"0123456789abcdef", 1);
        let mut v = StreamVerifier::new();
        let mut stats = VerifyStats::default();
        let file_size = cat.file_size();
        let mut stream = dcn_httpd::response::response_header(
            dcn_httpd::response::ResponseInfo::Ok {
                body_len: file_size,
            },
            false,
        );
        let mut body = vec![0u8; file_size as usize];
        cat.expected(FileId(3), 0, &mut body);
        stream.extend_from_slice(&body);
        // Deliver in awkward fragment sizes.
        for chunk in stream.chunks(1013) {
            v.push(chunk, &mut outstanding, &cat, &cipher, &mut stats);
        }
        assert_eq!(stats.failures, 0);
        assert_eq!(stats.verified_bytes, file_size);
        assert!(outstanding.is_empty(), "response consumed");
    }
}
