//! A client fleet that targets **multiple server endpoints** — the
//! workload side of the cluster layer (`dcn-cluster`).
//!
//! Each client runs one request at a time, but keeps a persistent
//! connection per server it has talked to (opened lazily the first
//! time the dispatcher routes it there — the way a real player keeps
//! a socket per CDN edge it gets directed to). Routing itself lives
//! in `dcn-cluster`; this fleet only needs to know *which* endpoint a
//! given request goes to, via [`MultiFleet::request`].
//!
//! When a server dies mid-stream, [`MultiFleet::fail_server`] severs
//! its connections and reports, per affected client, where the
//! interrupted transfer can resume (`Range: bytes=N-` on a replica).
//! Stream verification carries across the reconnect: resumed
//! responses are checked against the catalog oracle at their absolute
//! file offsets.

use crate::abr::{AbrSession, FetchStep};
use crate::verify::{Expected, RungClaim, StreamVerifier, VerifyStats};
use dcn_atlas::server::parse_frame;
use dcn_crypto::RecordCipher;
use dcn_httpd::{
    chunk_path,
    parser::{build_get, build_get_range},
    RequestDriver,
};
use dcn_netdev::WireFrame;
use dcn_obs::qoe::{QoeStats, QoeSummary};
use dcn_packet::{FlowId, Ipv4Addr, MacAddr, SeqNumber};
use dcn_simcore::{Nanos, SimRng, TimeBuckets};
use dcn_store::{AbrManifest, Catalog, FileId};
use dcn_tcpstack::{client::ClientState, ClientConn, Endpoint};
use std::collections::{HashMap, VecDeque};

use crate::fleet::{AbrReadout, ClientTx, FleetConfig};

/// "Client `client` wants `file`, starting at plaintext offset
/// `base`" — handed to the dispatcher, which picks the server.
#[derive(Clone, Copy, Debug, PartialEq, Eq)]
pub struct RequestNeed {
    pub client: usize,
    pub file: FileId,
    /// Resume base (0 for fresh requests).
    pub base: u64,
}

/// A client whose in-flight transfer was severed by a server failure,
/// ready to reconnect elsewhere.
pub type FailoverPlan = RequestNeed;

/// What an ABR-aware need draw produced: either a request to
/// dispatch, or "the playout buffer is full — ask again at `t`" (the
/// caller schedules a wake; see `dcn-cluster`'s `Ev::AbrWake`).
#[derive(Clone, Copy, Debug, PartialEq, Eq)]
pub enum NeedStep {
    Need(RequestNeed),
    PausedUntil(Nanos),
}

/// One connection to one server.
struct ConnState {
    conn: ClientConn,
    cipher: RecordCipher,
    verifier: StreamVerifier,
    outstanding: VecDeque<Expected>,
    /// Request waiting for the handshake to complete.
    pending: Option<Expected>,
}

struct MClient {
    driver: RequestDriver,
    rng: SimRng,
    /// Open connection per server (index-aligned with endpoints).
    conns: Vec<Option<ConnState>>,
    /// (server, file, base) of the in-flight request, if any.
    current: Option<(usize, FileId, u64)>,
    /// Next local port — bumped per connection so a reconnect never
    /// reuses a flow id.
    next_port: u16,
    done_at_least_one: bool,
    /// Adaptive-streaming state (Some iff `FleetConfig::abr`).
    abr: Option<AbrSession>,
}

/// What `on_burst` produced: reply frames plus how many responses
/// completed (the sim issues that many follow-up requests for
/// `client`).
pub struct BurstOut {
    pub tx: ClientTx,
    pub client: usize,
    pub completed: u64,
}

/// The multi-endpoint fleet.
pub struct MultiFleet {
    cfg: FleetConfig,
    catalog: Catalog,
    endpoints: Vec<Endpoint>,
    clients: Vec<MClient>,
    /// Keyed by the client→server flow.
    by_flow: HashMap<FlowId, (usize, usize)>,
    pub goodput: TimeBuckets,
    pub total_body_bytes: u64,
    pub responses_completed: u64,
    pub verify_stats: VerifyStats,
    /// Clients re-pointed at a replica by `fail_server`.
    pub failovers: u64,
    /// Failovers that resumed mid-body (base > 0) rather than
    /// restarting the chunk.
    pub resumed_responses: u64,
    /// On-off pauses entered by ABR clients (the cluster harness
    /// schedules the matching resume wake).
    paced: u64,
    /// Plaintext bytes the range resumes did *not* re-download.
    pub resumed_bytes_saved: u64,
    /// The ABR manifest (Some iff `FleetConfig::abr`).
    manifest: Option<AbrManifest>,
}

impl MultiFleet {
    #[must_use]
    pub fn new(cfg: FleetConfig, catalog: Catalog, endpoints: Vec<Endpoint>) -> Self {
        assert!(!endpoints.is_empty(), "need at least one server");
        let manifest = cfg.abr.map(|_| AbrManifest::eval(&catalog));
        MultiFleet {
            cfg,
            catalog,
            endpoints,
            manifest,
            clients: Vec::new(),
            by_flow: HashMap::new(),
            goodput: TimeBuckets::new(Nanos::from_millis(1)),
            total_body_bytes: 0,
            responses_completed: 0,
            verify_stats: VerifyStats::default(),
            failovers: 0,
            resumed_responses: 0,
            resumed_bytes_saved: 0,
            paced: 0,
        }
    }

    #[must_use]
    pub fn n_clients(&self) -> usize {
        self.clients.len()
    }

    #[must_use]
    pub fn n_servers(&self) -> usize {
        self.endpoints.len()
    }

    /// Create client `idx` (no traffic yet — follow with `next_need`
    /// → dispatch → `request`).
    pub fn spawn(&mut self, idx: usize, seed: u64) {
        assert_eq!(idx, self.clients.len(), "spawn in order");
        let mut rng = SimRng::new(seed ^ (idx as u64) << 20);
        let driver = if let Some(theta) = self.cfg.zipf {
            RequestDriver::zipf_perm(
                self.catalog.n_files(),
                theta,
                self.cfg.zipf_perm_seed,
                rng.fork(1),
            )
        } else if self.cfg.cacheable {
            RequestDriver::cacheable(self.catalog.n_files(), self.cfg.hot_files, rng.fork(1))
        } else {
            RequestDriver::uncachable(self.catalog.n_files(), rng.fork(1))
        };
        let abr = self.cfg.abr.map(|acfg| {
            let m = self.manifest.as_ref().expect("manifest built with abr");
            AbrSession::new(m.clone(), acfg, rng.gen_range(0, m.n_titles()))
        });
        self.clients.push(MClient {
            driver,
            rng,
            conns: (0..self.endpoints.len()).map(|_| None).collect(),
            current: None,
            next_port: 10_000,
            done_at_least_one: false,
            abr,
        });
    }

    /// Draw the next file for `client` from its workload
    /// distribution.
    pub fn next_need(&mut self, client: usize) -> RequestNeed {
        RequestNeed {
            client,
            file: self.clients[client].driver.next_file(),
            base: 0,
        }
    }

    /// ABR-aware need draw: the client's session picks the next chunk
    /// (possibly deciding a new segment's rung), or reports its
    /// on-off pause. Falls back to `next_need` for fixed workloads.
    pub fn next_need_at(&mut self, client: usize, now: Nanos) -> NeedStep {
        let c = &mut self.clients[client];
        let Some(abr) = c.abr.as_mut() else {
            return NeedStep::Need(self.next_need(client));
        };
        abr.note_first_request(now);
        match abr.next_fetch(now) {
            FetchStep::Chunk(file) => {
                c.driver.request_file(file);
                NeedStep::Need(RequestNeed {
                    client,
                    file,
                    base: 0,
                })
            }
            FetchStep::PausedUntil(t) => {
                self.paced = self.paced.saturating_add(1);
                NeedStep::PausedUntil(t)
            }
        }
    }

    fn local_endpoint(idx: usize, port: u16) -> Endpoint {
        Endpoint {
            mac: MacAddr::from_host_id(1000 + idx as u32),
            ip: Ipv4Addr::new(10, 1, (idx / 250) as u8, (idx % 250) as u8 + 1),
            port,
        }
    }

    /// Send `need` to `server` (the dispatcher's pick). Opens a
    /// connection lazily; the request rides once the handshake is
    /// done. Returns frames to inject into the network.
    pub fn request(&mut self, need: RequestNeed, server: usize) -> ClientTx {
        let verify = self.cfg.verify;
        let idx = need.client;
        let client = &mut self.clients[idx];
        client.current = Some((server, need.file, need.base));
        // ABR clients attach their (title, seg, rung) claim so the
        // verifier catches wrong-rung deliveries from any replica.
        let claim = client
            .abr
            .as_ref()
            .and_then(|a| a.current_claim())
            .map(|(title, seg, rung)| RungClaim { title, seg, rung });
        let expected = Expected {
            file: need.file,
            base: need.base,
            claim,
        };
        if let Some(cs) = client.conns[server].as_mut() {
            if matches!(cs.conn.state, ClientState::Established) {
                if verify {
                    cs.outstanding.push_back(expected);
                }
                let f = cs.conn.send(get_bytes(need));
                return ClientTx {
                    flow: cs.conn.flow(),
                    frames: vec![frame_of(f.headers, f.payload)],
                };
            }
            cs.pending = Some(expected);
            return ClientTx {
                flow: cs.conn.flow(),
                frames: Vec::new(),
            };
        }
        // Fresh connection to this server.
        let local = Self::local_endpoint(idx, client.next_port);
        client.next_port = client.next_port.wrapping_add(1).max(10_000);
        let iss = SeqNumber(client.rng.next_u64() as u32);
        let (conn, syn) = ClientConn::connect(local, self.endpoints[server], iss, 4 << 20);
        let flow = conn.flow();
        // Per-session key derived from the flow, same as the server's
        // §4.2 TLS emulation (handshake out of scope).
        let mut key = [0u8; 16];
        dcn_simcore::prf_bytes(u64::from(flow.rss_hash()) ^ 0x6B65_7931, 0, &mut key);
        let cipher = RecordCipher::new(&key, flow.rss_hash());
        let verifier = match (&self.manifest, verify) {
            (Some(m), true) => StreamVerifier::with_manifest(m.clone()),
            _ => StreamVerifier::new(),
        };
        client.conns[server] = Some(ConnState {
            conn,
            cipher,
            verifier,
            outstanding: VecDeque::new(),
            pending: Some(expected),
        });
        self.by_flow.insert(flow, (idx, server));
        ClientTx {
            flow,
            frames: vec![frame_of(syn.headers, syn.payload)],
        }
    }

    /// A burst of frames arrived from a server (`flow` is the
    /// server→client direction).
    pub fn on_burst(
        &mut self,
        now: Nanos,
        flow: FlowId,
        frames: Vec<WireFrame>,
    ) -> Option<BurstOut> {
        let &(idx, server) = self.by_flow.get(&flow.reversed())?;
        let client = &mut self.clients[idx];
        let cs = client.conns[server].as_mut()?;
        let parsed: Vec<_> = frames
            .iter()
            .filter_map(|f| {
                let (_, tcp, payload) = parse_frame(f)?;
                Some((tcp, payload.to_vec()))
            })
            .collect();
        let acks = cs.conn.on_burst(now, parsed);
        let mut out: Vec<WireFrame> = acks
            .into_iter()
            .map(|f| frame_of(f.headers, f.payload))
            .collect();

        let delivered = cs.conn.take_inbox();
        let mut completed = 0;
        if !delivered.is_empty() {
            let body_before = client.driver.body_bytes;
            completed = client.driver.on_bytes(&delivered);
            let body_new = client.driver.body_bytes - body_before;
            self.goodput.add(now, body_new as f64);
            self.total_body_bytes += body_new;
            self.responses_completed += completed;
            if self.cfg.verify {
                cs.verifier.push(
                    &delivered,
                    &mut cs.outstanding,
                    &self.catalog,
                    &cs.cipher,
                    &mut self.verify_stats,
                );
            }
            if completed > 0 {
                client.done_at_least_one = true;
                client.current = None;
                // Each completed response is one manifest chunk.
                if let Some(abr) = client.abr.as_mut() {
                    for _ in 0..completed {
                        abr.on_chunk_done(now);
                    }
                }
            }
        }
        // Handshake completed → release the parked request.
        if matches!(cs.conn.state, ClientState::Established) {
            if let Some(exp) = cs.pending.take() {
                if self.cfg.verify {
                    cs.outstanding.push_back(exp);
                }
                let need = RequestNeed {
                    client: idx,
                    file: exp.file,
                    base: exp.base,
                };
                let f = cs.conn.send(get_bytes(need));
                out.push(frame_of(f.headers, f.payload));
            }
        }
        Some(BurstOut {
            tx: ClientTx {
                flow: flow.reversed(),
                frames: out,
            },
            client: idx,
            completed,
        })
    }

    /// Server `server` is gone (fail-stop): sever its connections and
    /// report which clients need re-dispatching — each with the file
    /// offset its interrupted transfer can resume from.
    pub fn fail_server(&mut self, server: usize) -> Vec<FailoverPlan> {
        let mut plans = Vec::new();
        for (idx, client) in self.clients.iter_mut().enumerate() {
            let Some(cs) = client.conns[server].take() else {
                continue;
            };
            self.by_flow.remove(&cs.conn.flow());
            let Some((cur_server, cur_file, cur_base)) = client.current else {
                continue; // idle connection, nothing in flight
            };
            if cur_server != server {
                continue; // in-flight request targets another server
            }
            // The driver knows the in-order wire progress of the
            // aborted response and floors it to a record boundary.
            let resumed = client.driver.disconnect().map_or(0, |p| p.offset);
            let base = cur_base + resumed;
            client.current = None;
            self.failovers += 1;
            if base > 0 {
                self.resumed_responses += 1;
                self.resumed_bytes_saved += base;
            }
            plans.push(RequestNeed {
                client: idx,
                file: cur_file,
                base,
            });
        }
        plans
    }

    /// Close every ABR session and aggregate the fleet's QoE plus the
    /// canonical decision trace. None for fixed-rate fleets.
    pub fn finish_abr(&mut self, now: Nanos) -> Option<AbrReadout> {
        self.cfg.abr?;
        let mut out = AbrReadout::default();
        let mut stats: Vec<QoeStats> = Vec::new();
        for (i, c) in self.clients.iter_mut().enumerate() {
            let Some(abr) = c.abr.take() else { continue };
            out.decisions += abr.decisions.len() as u64;
            out.downswitches += abr.downswitches();
            for d in &abr.decisions {
                out.trace.push_str(&d.trace_line(i));
            }
            stats.push(abr.finish(now));
        }
        out.qoe = QoeSummary::aggregate(&stats, now);
        out.paced_wakes = self.paced;
        Some(out)
    }

    /// Fraction of clients that completed at least one response.
    #[must_use]
    pub fn live_fraction(&self) -> f64 {
        if self.clients.is_empty() {
            return 0.0;
        }
        self.clients.iter().filter(|c| c.done_at_least_one).count() as f64
            / self.clients.len() as f64
    }

    /// Total dup-ACKs across every live connection.
    #[must_use]
    pub fn dupacks(&self) -> u64 {
        self.clients
            .iter()
            .flat_map(|c| c.conns.iter().flatten())
            .map(|cs| cs.conn.dupacks_sent)
            .sum()
    }
}

fn get_bytes(need: RequestNeed) -> Vec<u8> {
    let path = chunk_path(need.file);
    if need.base > 0 {
        build_get_range(&path, "cdn.test", need.base)
    } else {
        build_get(&path, "cdn.test")
    }
}

fn frame_of(headers: Vec<u8>, payload: Vec<u8>) -> WireFrame {
    WireFrame::single(headers, dcn_netdev::PayloadBytes::Real(payload))
}

#[cfg(test)]
mod tests {
    use super::*;

    fn endpoints(n: usize) -> Vec<Endpoint> {
        (0..n)
            .map(|i| Endpoint {
                mac: MacAddr::from_host_id(i as u32 + 1),
                ip: Ipv4Addr::new(10, 0, 0, i as u8 + 1),
                port: 80,
            })
            .collect()
    }

    #[test]
    fn lazy_connections_one_per_server() {
        let cat = Catalog::new(1000, 300 * 1024, 4, 7);
        let mut fleet = MultiFleet::new(FleetConfig::default(), cat, endpoints(3));
        fleet.spawn(0, 9);
        let need = fleet.next_need(0);
        let tx = fleet.request(need, 2);
        assert_eq!(tx.frames.len(), 1, "SYN to server 2");
        assert_eq!(tx.flow.dst_ip, Ipv4Addr::new(10, 0, 0, 3));
        // A second request to the same (unestablished) server parks.
        let tx2 = fleet.request(
            RequestNeed {
                client: 0,
                file: FileId(1),
                base: 0,
            },
            2,
        );
        assert!(tx2.frames.is_empty());
    }

    #[test]
    fn reconnects_use_fresh_flows() {
        let cat = Catalog::new(1000, 300 * 1024, 4, 7);
        let mut fleet = MultiFleet::new(FleetConfig::default(), cat, endpoints(2));
        fleet.spawn(0, 9);
        let t1 = fleet.request(
            RequestNeed {
                client: 0,
                file: FileId(1),
                base: 0,
            },
            0,
        );
        let plans = fleet.fail_server(0);
        assert_eq!(plans.len(), 1);
        assert_eq!(
            plans[0],
            RequestNeed {
                client: 0,
                file: FileId(1),
                base: 0
            }
        );
        let t2 = fleet.request(plans[0], 1);
        assert_ne!(t1.flow, t2.flow);
        assert_eq!(fleet.failovers, 1);
        assert_eq!(fleet.resumed_responses, 0, "no body bytes yet → restart");
    }

    #[test]
    fn fail_server_skips_idle_and_other_targets() {
        let cat = Catalog::new(1000, 300 * 1024, 4, 7);
        let mut fleet = MultiFleet::new(FleetConfig::default(), cat, endpoints(2));
        fleet.spawn(0, 9);
        // In-flight request targets server 1; server 0 has no conn.
        fleet.request(
            RequestNeed {
                client: 0,
                file: FileId(4),
                base: 0,
            },
            1,
        );
        assert!(fleet.fail_server(0).is_empty());
        // Killing server 1 yields the plan.
        assert_eq!(fleet.fail_server(1).len(), 1);
    }
}
