//! The §4 testbed in one deterministic event loop.
//!
//! Topology: server ↔ 40 GbE cut-through switch ↔ clients, with the
//! delay middlebox on the client→server path only (data flows
//! server→client over the LAN with microsecond latency; ACKs and
//! requests take the per-flow 10–40 ms detour — exactly the paper's
//! setup, including its rationale of keeping the middlebox out of
//! the high-rate direction).

use crate::fleet::{ClientFleet, ClientTx, FleetConfig};
use dcn_atlas::server::parse_frame;
use dcn_atlas::{AtlasConfig, AtlasServer};
use dcn_faults::{salt, FaultConfig, FrameFate, FrameInfo, LinkFaults, LossModel};
use dcn_kstack::{KstackConfig, KstackServer};
use dcn_mem::{Fidelity, MemSnapshot};
use dcn_netdev::{tcp_frame_info, DelayMiddlebox, SentBurst, WireFrame};
use dcn_obs::export::{stage_summary, write_trace_jsonl, TimeSeries};
use dcn_packet::FlowId;
use dcn_simcore::{EventQueue, Nanos};
use dcn_store::Catalog;
use std::collections::HashMap;
use std::path::PathBuf;

/// Switch forwarding latency (cut-through 40 GbE).
const SWITCH_LATENCY: Nanos = Nanos(2_000);

/// Abstraction over the two server implementations so the harness
/// and every figure binary treat them identically.
pub trait VideoServer {
    /// Frames arrive from the wire; returns bursts that left the NIC.
    fn on_wire_rx(&mut self, now: Nanos, frames: Vec<WireFrame>) -> Vec<SentBurst>;
    /// Next instant internal state needs service.
    fn poll_at(&self) -> Option<Nanos>;
    /// Service internal state (disk completions, timers, worker
    /// threads); returns bursts that left the NIC.
    fn advance(&mut self, now: Nanos) -> Vec<SentBurst>;
    /// DRAM counters over a window.
    fn mem_snapshot(&self, warmup: Nanos, end: Nanos) -> MemSnapshot;
    /// Total CPU utilization in percent over a window.
    fn cpu_pct(&self, warmup: Nanos, end: Nanos) -> f64;
    /// Descriptive label for reports.
    fn label(&self) -> String;
    /// Free-form diagnostics line (stall debugging).
    fn debug_stats(&self) -> String {
        String::new()
    }
    /// Poll-source breakdown (wake-storm debugging).
    fn poll_breakdown(&self) -> String {
        String::new()
    }
    /// Publish sample-point gauges into the server's registry.
    fn publish_obs(&mut self) {}
    /// The server's unified metrics registry, if it has one.
    fn registry(&self) -> Option<&dcn_obs::Registry> {
        None
    }
    /// The chunk-lifecycle tracer (Atlas only).
    fn tracer(&self) -> Option<&dcn_obs::Tracer> {
        None
    }
    /// Stage-profiler snapshot (servers built with `profile: true`).
    fn prof_report(&self) -> Option<dcn_obs::ProfReport> {
        None
    }
    /// Mutable registry access (the harness publishes link/client
    /// fault counters into the server's unified registry so the
    /// metrics CSV carries them).
    fn registry_mut(&mut self) -> Option<&mut dcn_obs::Registry> {
        None
    }
    /// Arm the server-side seeded fault injectors (NVMe device and
    /// submission-queue faults). Link and client faults are applied
    /// by the harness itself.
    fn inject_faults(&mut self, _f: &FaultConfig, _seed: u64) {}
    /// Buffer-pool leak audit (Atlas only): DMA buffers neither free
    /// nor legitimately held. 0 for servers without a DMA pool.
    fn leaked_buffers(&self) -> i64 {
        0
    }
    /// Instantaneous DMA buffer-pool state as (free, capacity). None
    /// for servers without a pool — the harness stops sampling.
    fn pool_snapshot(&self) -> Option<(u64, u64)> {
        None
    }
}

impl VideoServer for AtlasServer {
    fn on_wire_rx(&mut self, now: Nanos, frames: Vec<WireFrame>) -> Vec<SentBurst> {
        AtlasServer::on_wire_rx(self, now, frames)
    }
    fn poll_at(&self) -> Option<Nanos> {
        AtlasServer::poll_at(self)
    }
    fn advance(&mut self, now: Nanos) -> Vec<SentBurst> {
        AtlasServer::advance(self, now)
    }
    fn mem_snapshot(&self, warmup: Nanos, end: Nanos) -> MemSnapshot {
        self.mem.counters.snapshot(warmup, end)
    }
    fn cpu_pct(&self, warmup: Nanos, end: Nanos) -> f64 {
        self.cores.utilization_pct(warmup, end)
    }
    fn label(&self) -> String {
        format!(
            "Atlas/{} cores{}",
            self.cfg.cores,
            if self.cfg.encrypted { " TLS" } else { "" }
        )
    }
    fn debug_stats(&self) -> String {
        self.debug_stats_string()
    }
    fn poll_breakdown(&self) -> String {
        self.poll_breakdown()
    }
    fn publish_obs(&mut self) {
        AtlasServer::publish_obs(self);
    }
    fn registry(&self) -> Option<&dcn_obs::Registry> {
        Some(&self.reg)
    }
    fn tracer(&self) -> Option<&dcn_obs::Tracer> {
        Some(&self.tracer)
    }
    fn prof_report(&self) -> Option<dcn_obs::ProfReport> {
        AtlasServer::prof_report(self)
    }
    fn registry_mut(&mut self) -> Option<&mut dcn_obs::Registry> {
        Some(&mut self.reg)
    }
    fn inject_faults(&mut self, f: &FaultConfig, seed: u64) {
        AtlasServer::inject_faults(self, f, seed);
    }
    fn leaked_buffers(&self) -> i64 {
        AtlasServer::leaked_buffers(self)
    }
    fn pool_snapshot(&self) -> Option<(u64, u64)> {
        Some((
            u64::from(self.free_buffers()),
            u64::from(self.pool_capacity()),
        ))
    }
}

impl VideoServer for KstackServer {
    fn on_wire_rx(&mut self, now: Nanos, frames: Vec<WireFrame>) -> Vec<SentBurst> {
        KstackServer::on_wire_rx(self, now, frames)
    }
    fn poll_at(&self) -> Option<Nanos> {
        KstackServer::poll_at(self)
    }
    fn advance(&mut self, now: Nanos) -> Vec<SentBurst> {
        KstackServer::advance(self, now)
    }
    fn mem_snapshot(&self, warmup: Nanos, end: Nanos) -> MemSnapshot {
        self.mem.counters.snapshot(warmup, end)
    }
    fn cpu_pct(&self, warmup: Nanos, end: Nanos) -> f64 {
        self.cores.utilization_pct(warmup, end)
    }
    fn label(&self) -> String {
        self.variant_label()
    }
    fn publish_obs(&mut self) {
        KstackServer::publish_obs(self);
    }
    fn registry(&self) -> Option<&dcn_obs::Registry> {
        Some(&self.reg)
    }
    fn prof_report(&self) -> Option<dcn_obs::ProfReport> {
        KstackServer::prof_report(self)
    }
    fn registry_mut(&mut self) -> Option<&mut dcn_obs::Registry> {
        Some(&mut self.reg)
    }
    fn inject_faults(&mut self, f: &FaultConfig, seed: u64) {
        KstackServer::inject_faults(self, f, seed);
    }
}

/// Which server to run.
#[derive(Clone, Debug)]
pub enum ServerKind {
    Atlas(AtlasConfig),
    Kstack(KstackConfig),
}

/// One experiment configuration.
#[derive(Clone, Debug)]
pub struct Scenario {
    pub server: ServerKind,
    pub fleet: FleetConfig,
    pub catalog: Catalog,
    /// Measurement starts here (connections ramp + TCP slow start
    /// settle during warm-up).
    pub warmup: Nanos,
    /// Simulated end time.
    pub duration: Nanos,
    pub seed: u64,
    /// Probability of dropping each server→client frame (fault
    /// injection; 0.0 for the paper's lossless testbed). Legacy knob:
    /// equivalent to `faults.net.loss = LossModel::Uniform(p)`, and
    /// only consulted when `faults.net.loss` is `LossModel::None`.
    pub data_loss: f64,
    /// Seeded fault injection: NVMe device faults and SQ backpressure
    /// (armed inside the server), link loss/duplication/corruption
    /// and client stalls (applied by this harness). All schedules are
    /// pure functions of `seed` — same seed, same faults.
    pub faults: FaultConfig,
}

impl Scenario {
    /// Sensible defaults for tests/examples: small fleet, full
    /// fidelity, verification on.
    #[must_use]
    pub fn smoke(server: ServerKind, n_clients: usize, seed: u64) -> Scenario {
        Scenario {
            server,
            fleet: FleetConfig {
                n_clients,
                ..FleetConfig::default()
            },
            catalog: Catalog::new(50_000, 300 * 1024, 4, seed),
            warmup: Nanos::from_millis(250),
            duration: Nanos::from_millis(700),
            seed,
            data_loss: 0.0,
            faults: FaultConfig::default(),
        }
    }
}

/// Observability outputs for one run: where to dump the chunk trace
/// (JSONL) and the metrics time-series (CSV). Both default to off, in
/// which case the run is bit-identical to an unobserved one.
#[derive(Clone, Debug, Default)]
pub struct ObsOptions {
    /// Write finished chunk traces as JSON-lines here. Also turns on
    /// the Atlas chunk-lifecycle tracer.
    pub trace_out: Option<PathBuf>,
    /// Write a `t_ms,metric,value` CSV of registry samples here.
    pub metrics_out: Option<PathBuf>,
    /// Virtual-time sampling cadence for the CSV (default 10 ms).
    pub sample_interval: Option<Nanos>,
}

impl ObsOptions {
    #[must_use]
    pub fn disabled() -> Self {
        Self::default()
    }

    #[must_use]
    pub fn active(&self) -> bool {
        self.trace_out.is_some() || self.metrics_out.is_some()
    }
}

/// What the observed run produced beyond the metrics.
#[derive(Clone, Debug, Default)]
pub struct ObsReport {
    /// Chunk traces written to `trace_out`.
    pub traced_chunks: usize,
    /// Per-stage p50/p99 latency table (empty if tracing was off).
    pub stage_summary: String,
}

/// Fault firings and recovery actions observed over one run,
/// assembled from the harness-side injectors and the server's
/// unified registry.
#[derive(Clone, Copy, Debug, Default)]
pub struct FaultMetrics {
    /// Server→client data frames dropped by the loss model.
    pub net_dropped: u64,
    /// …delivered twice.
    pub net_duplicated: u64,
    /// …corrupted in flight (detected by FCS, so dropped).
    pub net_corrupt_dropped: u64,
    /// …corrupted in flight and delivered anyway (FCS bypassed).
    pub net_corrupt_delivered: u64,
    /// Subset of `net_dropped` that hit a retransmission.
    pub net_retx_dropped: u64,
    /// Client-side delivery stalls injected.
    pub client_stalls: u64,
    /// NVMe reads completed with an unrecoverable media error.
    pub nvme_read_errors: u64,
    /// NVMe commands hit by a firmware latency spike.
    pub nvme_latency_spikes: u64,
    /// Diskmap SQ admissions rejected (injected backpressure).
    pub sq_rejects: u64,
    /// Disk fetches re-issued after a device error (both stacks).
    pub fetch_retries: u64,
    /// Connections torn down by the degradation policy.
    pub conns_aborted: u64,
    /// Server TCP retransmission timeouts fired.
    pub rto_fired: u64,
}

/// Overload-defense activity observed over one run: server-side shed
/// and reap counters (from the unified registry) plus the client-side
/// view of the same events.
#[derive(Clone, Copy, Debug, Default)]
pub struct OverloadMetrics {
    /// SYNs refused with RST by admission control (both stacks).
    pub shed_new: u64,
    /// Requests answered 503 + Retry-After while shedding.
    pub retry_503: u64,
    /// Idle / header-timeout connections reaped (Atlas).
    pub reaped_idle: u64,
    /// Buffer-holding slow readers aborted (Atlas).
    pub aborted_slow: u64,
    /// Staging/fetch passes parked on an empty buffer pool.
    pub empty_waits: u64,
    /// Clients that observed a server RST (refused or aborted).
    pub client_resets: u64,
    /// 503 responses the fleet received.
    pub client_503s: u64,
    /// Deferred re-requests fired after Retry-After backoff.
    pub client_retries: u64,
    /// p99 time-to-first-body-byte (ms), including retry backoff.
    pub ttfb_p99_ms: f64,
}

/// Tiered-catalog activity over one run, assembled from the `tier.*`
/// registry family (present when the server ran with a tier engine
/// and/or the hot-chunk DMA cache).
#[derive(Clone, Copy, Debug, Default)]
pub struct TierMetrics {
    /// Requests classified hot / cold (per request, not per fetch).
    pub hot_hits: u64,
    pub cold_misses: u64,
    /// hot_hits / (hot_hits + cold_misses).
    pub hit_ratio: f64,
    /// Objects resident on the hot tier at run end.
    pub hot_count: u64,
    /// Bytes delivered from the cold object store (demand misses).
    pub cold_bytes: u64,
    /// Cold-store GETs (demand + promotion reads).
    pub cold_requests: u64,
    /// Simulated cold-store bill, micro-cents.
    pub cold_cost_ucents: u64,
    pub promotions: u64,
    pub demotions: u64,
    pub promote_deferred: u64,
    pub promoted_bytes: u64,
    pub epochs: u64,
    /// Hot-chunk DMA cache (Atlas ablation; zero on kstack).
    pub cache_hits: u64,
    pub cache_misses: u64,
    pub cache_hit_ratio: f64,
    /// DRAM traffic the cache itself cost (fills + hit readbacks).
    pub cache_dram_bytes: u64,
}

/// DMA buffer-pool occupancy over the measurement window, sampled on
/// a fixed virtual-time cadence. The `ablation_abr` readout: on-off
/// ABR bursts show up as deeper minima and higher variance than the
/// fixed-rate workload's steady drain.
#[derive(Clone, Copy, Debug, Default, PartialEq)]
pub struct PoolOcc {
    pub samples: u64,
    pub capacity: u64,
    /// Fewest free buffers seen at any sample point.
    pub free_min: u64,
    pub free_mean: f64,
    pub free_stddev: f64,
}

/// Everything the paper's panels need from one run.
#[derive(Clone, Debug)]
pub struct RunMetrics {
    pub label: String,
    pub net_gbps: f64,
    pub cpu_pct: f64,
    pub mem_read_gbps: f64,
    pub mem_write_gbps: f64,
    pub read_net_ratio: f64,
    pub llc_miss_e8: f64,
    pub responses: u64,
    pub total_body_bytes: u64,
    pub verified_bytes: u64,
    pub verify_failures: u64,
    pub live_fraction: f64,
    /// Disk read commands completed successfully (Atlas counts these;
    /// 0 for the kernel stack, which counts bytes only).
    pub disk_reads: u64,
    /// Bytes read from disk (both stacks).
    pub disk_read_bytes: u64,
    /// Loss-driven re-fetches from disk (Atlas; the paper's "storage
    /// is the retransmission buffer" path).
    pub retransmit_fetches: u64,
    /// DMA buffers unaccounted for at run end (must be 0).
    pub leaked_buffers: i64,
    pub faults: FaultMetrics,
    pub overload: OverloadMetrics,
    /// Stage-profiler snapshot, present when the server config set
    /// `profile: true` (the `perf_baseline` gate reads this).
    pub perf: Option<dcn_obs::ProfReport>,
    /// ABR readout (QoE + decision trace), present when the fleet ran
    /// in adaptive mode.
    pub abr: Option<crate::fleet::AbrReadout>,
    /// DMA-pool occupancy over the measurement window (Atlas only).
    pub pool_occ: Option<PoolOcc>,
    /// Tiered-catalog readout, present when the server ran tiered.
    pub tier: Option<TierMetrics>,
}

/// DMA-pool occupancy sampling cadence (virtual time).
const POOL_SAMPLE_EVERY: Nanos = Nanos(500_000);

enum Ev {
    /// Ramp-up: spawn client `idx`.
    Spawn(usize),
    /// Frames arrive at the server.
    ServerRx(Vec<WireFrame>),
    /// A burst arrives at the clients for `flow` (server→client
    /// direction).
    ClientRx(FlowId, Vec<WireFrame>),
    /// Server internal wake (disk completion / TCP timer).
    ServerWake,
    /// A client's Retry-After backoff expired: re-send shed requests.
    RetryWake,
    /// An ABR client's playout buffer drained to the resume level:
    /// the "on" edge of its on-off cycle.
    AbrWake,
    /// Read the DMA buffer-pool level (observation only — never
    /// mutates simulation state).
    PoolSample,
}

/// Run one scenario to completion and report metrics.
pub fn run_scenario(sc: &Scenario) -> RunMetrics {
    run_scenario_observed(sc, &ObsOptions::disabled()).0
}

/// Run one scenario with observability outputs. With `obs` disabled
/// this is exactly `run_scenario` (same seed ⇒ identical metrics);
/// with `trace_out` set the Atlas chunk-lifecycle tracer is enabled
/// and dumped as JSONL, and with `metrics_out` set the unified
/// registry is sampled on a fixed virtual-time cadence into a CSV.
pub fn run_scenario_observed(sc: &Scenario, obs: &ObsOptions) -> (RunMetrics, ObsReport) {
    let mut server: Box<dyn VideoServer> = match &sc.server {
        ServerKind::Atlas(cfg) => {
            let mut cfg = cfg.clone();
            if obs.trace_out.is_some() {
                cfg.trace = true;
            }
            Box::new(AtlasServer::new(cfg, sc.catalog.clone(), sc.seed))
        }
        ServerKind::Kstack(cfg) => {
            Box::new(KstackServer::new(cfg.clone(), sc.catalog.clone(), sc.seed))
        }
    };
    let fidelity_full = matches!(
        &sc.server,
        ServerKind::Atlas(AtlasConfig {
            fidelity: Fidelity::Full,
            ..
        }) | ServerKind::Kstack(KstackConfig {
            fidelity: Fidelity::Full,
            ..
        })
    );
    let mut fleet_cfg = sc.fleet;
    if !fidelity_full {
        fleet_cfg.verify = false; // nothing real to verify
    }
    // Client-fault modes live in the fleet: the first N clients turn
    // into slowloris attackers.
    fleet_cfg.slowloris = (sc.faults.client.slowloris_conns as usize).min(fleet_cfg.n_clients);
    let mut fleet = ClientFleet::new(fleet_cfg, sc.catalog.clone(), sc.seed);
    let middlebox = DelayMiddlebox::paper(sc.seed);
    // Effective fault configuration: the legacy `data_loss` knob maps
    // onto the uniform loss model when no explicit model is set.
    let mut fcfg = sc.faults;
    if matches!(fcfg.net.loss, LossModel::None) && sc.data_loss > 0.0 {
        fcfg.net.loss = LossModel::Uniform(sc.data_loss);
    }
    server.inject_faults(&fcfg, sc.seed);
    let mut link = LinkFaults::new(fcfg.net, sc.seed);
    let mut stall_rng = dcn_faults::rng_for(sc.seed, salt::CLIENT);
    let mut stalled_until: HashMap<FlowId, Nanos> = HashMap::new();
    let mut client_stalls: u64 = 0;
    let mut q: EventQueue<Ev> = EventQueue::new();

    // Ramp clients over the first 150 ms (or the warm-up, whichever
    // is shorter) so the server isn't hit by one synchronized SYN
    // flood — unless the aggressive-open fault is armed, in which
    // case that flood is exactly the point.
    let ramp = if fcfg.client.aggressive_open {
        Nanos::ZERO
    } else {
        sc.warmup.min(Nanos::from_millis(150))
    };
    for idx in 0..sc.fleet.n_clients {
        let at = ramp.mul_f64(idx as f64 / sc.fleet.n_clients.max(1) as f64);
        q.schedule(at, Ev::Spawn(idx));
    }
    q.schedule(Nanos::ZERO, Ev::ServerWake);

    // Metrics CSV sampling (virtual-time cadence; off ⇒ zero work).
    let sample_interval = obs.sample_interval.unwrap_or(Nanos::from_millis(10));
    let mut series = obs.metrics_out.as_ref().map(|_| TimeSeries::new());
    let mut next_sample = sample_interval;

    let mut next_wake = Nanos::MAX;
    let mut next_retry_wake = Nanos::MAX;
    let mut next_paced_wake = Nanos::MAX;
    // DMA-pool occupancy accumulators (post-warmup samples only).
    q.schedule(POOL_SAMPLE_EVERY, Ev::PoolSample);
    let mut pool_samples: u64 = 0;
    let mut pool_min = u64::MAX;
    let mut pool_sum = 0.0;
    let mut pool_sumsq = 0.0;
    let mut pool_cap: u64 = 0;
    let progress = std::env::var_os("DCN_PROGRESS").is_some();
    let mut n_events: u64 = 0;
    let mut counts = [0u64; 7];
    let mut steady_armed = false;
    while let Some(ev) = q.pop() {
        let now = ev.at;
        if !steady_armed && now >= sc.warmup {
            // The scratch arenas have reached steady-state capacity by
            // the end of warm-up; anything that grows them after this
            // point is hot-path heap traffic the zero-alloc tests
            // assert against (DESIGN.md §12).
            dcn_obs::steady::reset();
            steady_armed = true;
        }
        n_events += 1;
        counts[match &ev.event {
            Ev::Spawn(_) => 0,
            Ev::ServerRx(_) => 1,
            Ev::ClientRx(..) => 2,
            Ev::ServerWake => 3,
            Ev::RetryWake => 4,
            Ev::AbrWake => 5,
            Ev::PoolSample => 6,
        }] += 1;
        if progress && n_events.is_multiple_of(1_000_000) {
            eprintln!(
                "  ... {}M events (spawn {} srx {} crx {} wake {}), sim t={:?}, queue={}, poll: {}",
                n_events / 1_000_000,
                counts[0],
                counts[1],
                counts[2],
                counts[3],
                now,
                q.len(),
                server.poll_breakdown()
            );
        }
        if now > sc.duration {
            break;
        }
        if let Some(ts) = series.as_mut() {
            while next_sample <= now {
                server.publish_obs();
                publish_fault_gauges(server.as_mut(), &link, client_stalls);
                if let Some(reg) = server.registry() {
                    ts.sample(next_sample, reg);
                }
                next_sample += sample_interval;
            }
        }
        match ev.event {
            Ev::Spawn(idx) => {
                let tx = fleet.spawn(idx, sc.seed);
                route_client_tx(&mut q, &middlebox, now, tx);
            }
            Ev::ServerRx(frames) => {
                let bursts = server.on_wire_rx(now, frames);
                route_bursts(&mut q, now, bursts, &mut link);
            }
            Ev::ClientRx(flow, frames) => {
                if fcfg.client.is_active() {
                    // Injected client stall: the whole flow's delivery
                    // pauses; everything arriving meanwhile is
                    // deferred (in order) to the stall's end.
                    let until = stalled_until.get(&flow).copied();
                    if let Some(until) = until.filter(|&u| u > now) {
                        q.schedule(until, Ev::ClientRx(flow, frames));
                        continue;
                    }
                    if stall_rng.chance(fcfg.client.stall_p) {
                        client_stalls += 1;
                        let until = now + fcfg.client.stall;
                        stalled_until.insert(flow, until);
                        q.schedule(until, Ev::ClientRx(flow, frames));
                        continue;
                    }
                }
                if let Some(tx) = fleet.on_burst(now, flow, frames) {
                    route_client_tx(&mut q, &middlebox, now, tx);
                }
            }
            Ev::ServerWake => {
                // `next_wake` tracks the earliest wake still in the
                // queue. Only clear it when THAT wake fires; a stale
                // earlier duplicate must not clear it, or every stale
                // pop would re-schedule the same future deadline and
                // wakes would multiply without bound.
                if now >= next_wake {
                    next_wake = Nanos::MAX;
                }
                let bursts = server.advance(now);
                route_bursts(&mut q, now, bursts, &mut link);
            }
            Ev::RetryWake => {
                if now >= next_retry_wake {
                    next_retry_wake = Nanos::MAX;
                }
                for tx in fleet.fire_retries(now) {
                    route_client_tx(&mut q, &middlebox, now, tx);
                }
            }
            Ev::AbrWake => {
                if now >= next_paced_wake {
                    next_paced_wake = Nanos::MAX;
                }
                for tx in fleet.fire_paced(now) {
                    route_client_tx(&mut q, &middlebox, now, tx);
                }
            }
            Ev::PoolSample => {
                if let Some((free, cap)) = server.pool_snapshot() {
                    if now >= sc.warmup {
                        pool_samples += 1;
                        pool_min = pool_min.min(free);
                        pool_sum += free as f64;
                        pool_sumsq += free as f64 * free as f64;
                        pool_cap = cap;
                    }
                    let at = now + POOL_SAMPLE_EVERY;
                    if at <= sc.duration {
                        q.schedule(at, Ev::PoolSample);
                    }
                }
            }
        }
        // Keep exactly one pending wake at the server's next deadline.
        if let Some(at) = server.poll_at() {
            let at = at.max(q.now());
            if at < next_wake {
                q.schedule(at, Ev::ServerWake);
                next_wake = at;
            }
        }
        // Same single-pending-wake discipline for Retry-After timers.
        if let Some(at) = fleet.next_retry_at() {
            let at = at.max(q.now());
            if at < next_retry_wake {
                q.schedule(at, Ev::RetryWake);
                next_retry_wake = at;
            }
        }
        // …and for ABR on-off resumes.
        if let Some(at) = fleet.next_paced_at() {
            let at = at.max(q.now());
            if at < next_paced_wake {
                q.schedule(at, Ev::AbrWake);
                next_paced_wake = at;
            }
        }
    }

    if std::env::var_os("DCN_DEBUG").is_some() {
        eprintln!("server debug: {}", server.debug_stats());
    }
    let end = sc.duration;
    let mut report = ObsReport::default();
    // Close ABR sessions first so the fleet's QoE lands in the
    // registry (and the final CSV sample) alongside goodput/TTFB.
    let abr_readout = fleet.finish_abr(end);
    if let (Some(a), Some(reg)) = (abr_readout.as_ref(), server.registry_mut()) {
        for (name, v) in [
            ("qoe.sessions", a.qoe.sessions as f64),
            ("qoe.started", a.qoe.started as f64),
            ("qoe.startup_ms_mean", a.qoe.startup_ms_mean),
            ("qoe.startup_ms_max", a.qoe.startup_ms_max),
            ("qoe.rebuffer_ratio", a.qoe.rebuffer_ratio),
            ("qoe.rebuffer_events", a.qoe.rebuffer_events as f64),
            ("qoe.switches", a.qoe.switches as f64),
            ("qoe.downswitches", a.downswitches as f64),
            ("qoe.avg_bitrate_mbps", a.qoe.avg_bitrate_mbps),
        ] {
            let g = reg.gauge(name);
            reg.set(g, v);
        }
    }
    // Final publish: gauges (including fault counters) reflect
    // end-of-run state both for the last CSV sample and for the
    // registry reads below.
    server.publish_obs();
    publish_fault_gauges(server.as_mut(), &link, client_stalls);
    if let Some(ts) = series.as_mut() {
        if let Some(reg) = server.registry() {
            ts.sample(end, reg);
        }
    }
    if let (Some(path), Some(ts)) = (obs.metrics_out.as_ref(), series.as_ref()) {
        if let Err(e) = ts.write_csv(path) {
            eprintln!(
                "warning: failed to write metrics CSV {}: {e}",
                path.display()
            );
        }
    }
    if let Some(path) = obs.trace_out.as_ref() {
        if let Some(tr) = server.tracer() {
            if let Err(e) = write_trace_jsonl(path, tr) {
                eprintln!(
                    "warning: failed to write trace JSONL {}: {e}",
                    path.display()
                );
            }
            report.traced_chunks = tr.finished().len();
            report.stage_summary = stage_summary(tr);
        }
    }
    let snap = server.mem_snapshot(sc.warmup, end);
    let net_gbps = fleet.goodput.rate_per_sec(sc.warmup, end) * 8.0 / 1e9;
    let empty_reg = dcn_obs::Registry::new();
    let reg = server.registry().unwrap_or(&empty_reg);
    let faults = FaultMetrics {
        net_dropped: link.dropped,
        net_duplicated: link.duplicated,
        net_corrupt_dropped: link.corrupt_dropped,
        net_corrupt_delivered: link.corrupt_delivered,
        net_retx_dropped: link.retx_dropped,
        client_stalls,
        nvme_read_errors: reg.find_gauge("faults.nvme_read_errors").unwrap_or(0.0) as u64,
        nvme_latency_spikes: reg.find_gauge("faults.nvme_latency_spikes").unwrap_or(0.0) as u64,
        sq_rejects: reg.find_gauge("faults.sq_rejects").unwrap_or(0.0) as u64,
        fetch_retries: reg.sum_prefixed("atlas.fetch_retries")
            + reg.sum_prefixed("kstack.fill_retries"),
        conns_aborted: reg.find_counter("atlas.conns_aborted").unwrap_or(0),
        rto_fired: reg.sum_prefixed_gauge("tcp.rto_fired") as u64,
    };
    let overload = OverloadMetrics {
        shed_new: reg.sum_prefixed("atlas.overload.shed_new")
            + reg.sum_prefixed("kstack.overload.shed_new"),
        retry_503: reg.sum_prefixed("atlas.overload.retry_503")
            + reg.sum_prefixed("kstack.overload.retry_503"),
        reaped_idle: reg.sum_prefixed("atlas.overload.reaped_idle"),
        aborted_slow: reg.sum_prefixed("atlas.overload.aborted_slow"),
        empty_waits: reg.sum_prefixed("atlas.bufpool.empty_waits")
            + reg.sum_prefixed("kstack.bufcache.empty_waits"),
        client_resets: fleet.resets_received(),
        client_503s: fleet.rejections_503(),
        client_retries: fleet.retries_fired,
        ttfb_p99_ms: fleet.ttfb_p99_ms(),
    };
    // `tier.hit_ratio` is registered iff the server was built with a
    // tier engine or hot-chunk cache — its presence gates the readout.
    let tier = reg
        .find_gauge("tier.hit_ratio")
        .map(|hit_ratio| TierMetrics {
            hot_hits: reg.sum_prefixed("tier.hot_hits"),
            cold_misses: reg.sum_prefixed("tier.cold_misses"),
            hit_ratio,
            hot_count: reg.find_gauge("tier.hot_count").unwrap_or(0.0) as u64,
            cold_bytes: reg.sum_prefixed("tier.cold_bytes"),
            cold_requests: reg.find_gauge("tier.cold_requests").unwrap_or(0.0) as u64,
            cold_cost_ucents: reg.find_gauge("tier.cold_cost_ucents").unwrap_or(0.0) as u64,
            promotions: reg.find_gauge("tier.promotions").unwrap_or(0.0) as u64,
            demotions: reg.find_gauge("tier.demotions").unwrap_or(0.0) as u64,
            promote_deferred: reg.find_gauge("tier.promote_deferred").unwrap_or(0.0) as u64,
            promoted_bytes: reg.find_gauge("tier.promoted_bytes").unwrap_or(0.0) as u64,
            epochs: reg.find_gauge("tier.epochs").unwrap_or(0.0) as u64,
            cache_hits: reg.sum_prefixed("tier.cache_hits"),
            cache_misses: reg.sum_prefixed("tier.cache_misses"),
            cache_hit_ratio: reg.find_gauge("tier.cache_hit_ratio").unwrap_or(0.0),
            cache_dram_bytes: reg.find_gauge("tier.cache_dram_bytes").unwrap_or(0.0) as u64,
        });
    let disk_reads = reg.sum_prefixed("atlas.disk_reads");
    let disk_read_bytes =
        reg.sum_prefixed("atlas.disk_read_bytes") + reg.sum_prefixed("kstack.disk_read_bytes");
    let retransmit_fetches = reg.sum_prefixed("atlas.retransmit_fetches");
    let metrics = RunMetrics {
        label: server.label(),
        net_gbps,
        cpu_pct: server.cpu_pct(sc.warmup, end),
        mem_read_gbps: snap.read_gbps(),
        mem_write_gbps: snap.write_gbps(),
        read_net_ratio: if net_gbps > 0.0 {
            snap.read_gbps() / net_gbps
        } else {
            0.0
        },
        llc_miss_e8: snap.miss_reads_e8(),
        responses: fleet.responses_completed,
        total_body_bytes: fleet.total_body_bytes,
        verified_bytes: fleet.verify_stats.verified_bytes,
        verify_failures: fleet.verify_stats.failures,
        live_fraction: fleet.live_fraction(),
        disk_reads,
        disk_read_bytes,
        retransmit_fetches,
        leaked_buffers: server.leaked_buffers(),
        faults,
        overload,
        perf: server.prof_report(),
        abr: abr_readout,
        pool_occ: (pool_samples > 0).then(|| {
            let mean = pool_sum / pool_samples as f64;
            let var = (pool_sumsq / pool_samples as f64 - mean * mean).max(0.0);
            PoolOcc {
                samples: pool_samples,
                capacity: pool_cap,
                free_min: pool_min,
                free_mean: mean,
                free_stddev: var.sqrt(),
            }
        }),
        tier,
    };
    (metrics, report)
}

/// Mirror the harness-side fault counters (link faults, client
/// stalls) into the server's unified registry so the metrics CSV and
/// any exporter see one coherent `faults.*` family.
fn publish_fault_gauges(server: &mut dyn VideoServer, link: &LinkFaults, client_stalls: u64) {
    let Some(reg) = server.registry_mut() else {
        return;
    };
    for (name, v) in [
        ("faults.net_dropped", link.dropped),
        ("faults.net_duplicated", link.duplicated),
        ("faults.net_corrupt_dropped", link.corrupt_dropped),
        ("faults.net_corrupt_delivered", link.corrupt_delivered),
        ("faults.net_retx_dropped", link.retx_dropped),
        ("faults.client_stalls", client_stalls),
    ] {
        let g = reg.gauge(name);
        reg.set(g, v as f64);
    }
}

/// Flip one payload byte of a frame whose corruption the (bypassed)
/// FCS failed to catch. Only materialized payloads can be mangled; at
/// modeled fidelity the bytes don't exist, so the frame passes
/// through (content verification is off there anyway).
pub fn corrupt_frame(mut f: WireFrame) -> WireFrame {
    if let dcn_netdev::PayloadBytes::Real(b) = &mut f.payload {
        if !b.is_empty() {
            let mid = b.len() / 2;
            b[mid] ^= 0x01;
        }
    }
    f
}

fn route_client_tx(q: &mut EventQueue<Ev>, mb: &DelayMiddlebox, now: Nanos, tx: ClientTx) {
    if tx.frames.is_empty() {
        return;
    }
    // Client → middlebox (per-flow constant delay) → switch → server.
    let delay = mb.delay(tx.flow) + SWITCH_LATENCY;
    q.schedule(now + delay, Ev::ServerRx(tx.frames));
}

fn route_bursts(
    q: &mut EventQueue<Ev>,
    _now: Nanos,
    bursts: Vec<SentBurst>,
    link: &mut LinkFaults,
) {
    let active = link.is_active();
    for b in bursts {
        // All frames of one burst belong to one flow (one TX
        // descriptor). Server → switch → client: LAN latency only.
        // The link fault model acts on individual data frames;
        // control frames (SYN-ACKs, bare ACKs) always get through —
        // `data_loss` has always meant *data* loss.
        let frames: Vec<WireFrame> = if active {
            let mut out = Vec::with_capacity(b.frames.len());
            for f in b.frames {
                let info = tcp_frame_info(&f).filter(|i| i.payload_len > 0);
                let Some(i) = info else {
                    out.push(f);
                    continue;
                };
                match link.classify(FrameInfo {
                    flow_key: i.flow_key,
                    seq: i.seq,
                    payload_len: i.payload_len,
                }) {
                    FrameFate::Deliver => out.push(f),
                    FrameFate::Drop | FrameFate::CorruptDrop => {}
                    FrameFate::Duplicate => {
                        out.push(f.clone());
                        out.push(f);
                    }
                    FrameFate::CorruptDeliver => out.push(corrupt_frame(f)),
                }
            }
            out
        } else {
            b.frames
        };
        if frames.is_empty() {
            continue;
        }
        let Some((flow, _, _)) = parse_frame(&frames[0]) else {
            continue;
        };
        q.schedule(b.departed + SWITCH_LATENCY, Ev::ClientRx(flow, frames));
    }
}
