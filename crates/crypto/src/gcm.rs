//! AES-128-GCM (NIST SP 800-38D): CTR-mode encryption + GHASH
//! authentication, with in-place seal/open.
//!
//! GHASH uses Shoup's 4-bit table method: 512 bytes of per-key tables
//! and two lookups per byte — small enough to live per-connection and
//! fast enough to run real payload through tests and examples.

use crate::aes::Aes128;

/// 128-bit value in GHASH's bit-reflected GF(2^128).
type Block = [u8; 16];

fn xor_block(a: &mut Block, b: &Block) {
    for i in 0..16 {
        a[i] ^= b[i];
    }
}

/// GHASH key tables: `table[i]` = H * i (as a 4-bit nibble product),
/// computed once per key.
struct GhashKey {
    /// M[i] = (i as 4-bit poly) · H, for the low nibble position.
    table: [Block; 16],
}

impl GhashKey {
    fn new(h: &Block) -> Self {
        let mut table = [[0u8; 16]; 16];
        // table[1] = H; table[i<<1] = xtime(table[i]); sums for the rest.
        table[8] = *h; // bit 0 of nibble = MSB-first "8"
                       // In GHASH's reflected representation, multiplying by x is a
                       // right shift with conditional reduction by E1000...0.
        for i in [4usize, 2, 1] {
            table[i] = mul_x(&table[i * 2]);
        }
        for i in 2..16usize {
            if !i.is_power_of_two() {
                let hi = 1usize << (usize::BITS - 1 - i.leading_zeros());
                let mut v = table[hi];
                xor_block(&mut v, &table[i - hi]);
                table[i] = v;
            }
        }
        GhashKey { table }
    }

    /// y ← (y ⊕ x) · H
    fn mul_h(&self, y: &mut Block) {
        let mut z = [0u8; 16];
        // Process 32 nibbles from the last to the first.
        for i in (0..16).rev() {
            for shift in [0u32, 4] {
                let nib = (y[i] >> shift) & 0xF;
                // z = z · x^4  (four multiplications by x)
                for _ in 0..4 {
                    z = mul_x(&z);
                }
                xor_block(&mut z, &self.table[nib as usize]);
            }
        }
        *y = z;
    }
}

/// Multiply by x in the reflected GF(2^128): right shift, reduce with
/// 0xE1 << 120 when the shifted-out bit was set.
fn mul_x(v: &Block) -> Block {
    let mut out = [0u8; 16];
    let mut carry = 0u8;
    for i in 0..16 {
        let b = v[i];
        out[i] = (b >> 1) | (carry << 7);
        carry = b & 1;
    }
    if carry == 1 {
        out[0] ^= 0xE1;
    }
    out
}

/// AES-128-GCM context for one key.
pub struct AesGcm128 {
    aes: Aes128,
    ghash: GhashKey,
}

/// Authentication tag length (full 16-byte GCM tag).
pub const TAG_LEN: usize = 16;

impl AesGcm128 {
    #[must_use]
    pub fn new(key: &[u8; 16]) -> Self {
        let aes = Aes128::new(key);
        let mut h = [0u8; 16];
        aes.encrypt_block(&mut h);
        AesGcm128 {
            ghash: GhashKey::new(&h),
            aes,
        }
    }

    fn j0(&self, nonce: &[u8; 12]) -> Block {
        let mut j0 = [0u8; 16];
        j0[..12].copy_from_slice(nonce);
        j0[15] = 1;
        j0
    }

    fn ctr_inplace(&self, j0: &Block, data: &mut [u8]) {
        let mut ctr = *j0;
        for chunk in data.chunks_mut(16) {
            inc32(&mut ctr);
            let mut ks = ctr;
            self.aes.encrypt_block(&mut ks);
            for (d, k) in chunk.iter_mut().zip(ks.iter()) {
                *d ^= k;
            }
        }
    }

    fn ghash_tag(&self, j0: &Block, aad: &[u8], ct: &[u8]) -> Block {
        let mut y = [0u8; 16];
        let feed = |data: &[u8], y: &mut Block| {
            for chunk in data.chunks(16) {
                let mut b = [0u8; 16];
                b[..chunk.len()].copy_from_slice(chunk);
                xor_block(y, &b);
                self.ghash.mul_h(y);
            }
        };
        feed(aad, &mut y);
        feed(ct, &mut y);
        let mut lens = [0u8; 16];
        lens[..8].copy_from_slice(&((aad.len() as u64) * 8).to_be_bytes());
        lens[8..].copy_from_slice(&((ct.len() as u64) * 8).to_be_bytes());
        xor_block(&mut y, &lens);
        self.ghash.mul_h(&mut y);
        // E(K, J0) ⊕ GHASH
        let mut ek = *j0;
        self.aes.encrypt_block(&mut ek);
        xor_block(&mut y, &ek);
        y
    }

    /// Encrypt `data` in place and return the tag. This is Atlas's
    /// path: the plaintext sits in a diskmap DMA buffer and is
    /// overwritten with ciphertext (§3, step 4).
    pub fn seal_in_place(&self, nonce: &[u8; 12], aad: &[u8], data: &mut [u8]) -> [u8; TAG_LEN] {
        let j0 = self.j0(nonce);
        self.ctr_inplace(&j0, data);
        self.ghash_tag(&j0, aad, data)
    }

    /// Verify `tag` and decrypt `data` in place. Returns false (and
    /// leaves `data` decrypted-garbage-free: untouched) on tag
    /// mismatch.
    pub fn open_in_place(
        &self,
        nonce: &[u8; 12],
        aad: &[u8],
        data: &mut [u8],
        tag: &[u8; TAG_LEN],
    ) -> bool {
        let j0 = self.j0(nonce);
        let expect = self.ghash_tag(&j0, aad, data);
        // Constant-time-ish comparison (simulation: semantic only).
        let diff = expect
            .iter()
            .zip(tag.iter())
            .fold(0u8, |d, (a, b)| d | (a ^ b));
        if diff != 0 {
            return false;
        }
        self.ctr_inplace(&j0, data);
        true
    }
}

fn inc32(ctr: &mut Block) {
    let mut v = u32::from_be_bytes([ctr[12], ctr[13], ctr[14], ctr[15]]);
    v = v.wrapping_add(1);
    ctr[12..].copy_from_slice(&v.to_be_bytes());
}

#[cfg(test)]
mod tests {
    use super::*;

    fn hex(s: &str) -> Vec<u8> {
        (0..s.len())
            .step_by(2)
            .map(|i| u8::from_str_radix(&s[i..i + 2], 16).unwrap())
            .collect()
    }

    #[test]
    fn empty_plaintext_tag_is_ekj0() {
        // GCM structure: with empty AAD and plaintext, GHASH reduces
        // to 0 (the length block is all-zero), so the tag must equal
        // E(K, J0) exactly. This pins the J0 construction; the GHASH
        // path itself is pinned by the NIST vectors below.
        let gcm = AesGcm128::new(&[0u8; 16]);
        let tag = gcm.seal_in_place(&[0u8; 12], &[], &mut []);
        let mut j0 = [0u8; 16];
        j0[15] = 1;
        crate::aes::Aes128::new(&[0u8; 16]).encrypt_block(&mut j0);
        assert_eq!(tag, j0);
    }

    #[test]
    fn nist_case_2_one_block() {
        // Test case 2: K=0, IV=0, P=0^128.
        let gcm = AesGcm128::new(&[0u8; 16]);
        let mut data = [0u8; 16];
        let tag = gcm.seal_in_place(&[0u8; 12], &[], &mut data);
        assert_eq!(data.to_vec(), hex("0388dace60b6a392f328c2b971b2fe78"));
        assert_eq!(tag.to_vec(), hex("ab6e47d42cec13bdf53a67b21257bddf"));
    }

    #[test]
    fn nist_case_3_four_blocks() {
        // Test case 3: the classic feffe992... key.
        let key: [u8; 16] = hex("feffe9928665731c6d6a8f9467308308").try_into().unwrap();
        let nonce: [u8; 12] = hex("cafebabefacedbaddecaf888").try_into().unwrap();
        let mut pt = hex(
            "d9313225f88406e5a55909c5aff5269a86a7a9531534f7da2e4c303d8a318a72\
             1c3c0c95956809532fcf0e2449a6b525b16aedf5aa0de657ba637b391aafd255",
        );
        let gcm = AesGcm128::new(&key);
        let tag = gcm.seal_in_place(&nonce, &[], &mut pt);
        assert_eq!(
            pt,
            hex(
                "42831ec2217774244b7221b784d0d49ce3aa212f2c02a4e035c17e2329aca12e\
                 21d514b25466931c7d8f6a5aac84aa051ba30b396a0aac973d58e091473f5985"
            )
        );
        assert_eq!(tag.to_vec(), hex("4d5c2af327cd64a62cf35abd2ba6fab4"));
    }

    #[test]
    fn nist_case_4_with_aad() {
        let key: [u8; 16] = hex("feffe9928665731c6d6a8f9467308308").try_into().unwrap();
        let nonce: [u8; 12] = hex("cafebabefacedbaddecaf888").try_into().unwrap();
        let aad = hex("feedfacedeadbeeffeedfacedeadbeefabaddad2");
        let mut pt = hex(
            "d9313225f88406e5a55909c5aff5269a86a7a9531534f7da2e4c303d8a318a72\
             1c3c0c95956809532fcf0e2449a6b525b16aedf5aa0de657ba637b39",
        );
        let gcm = AesGcm128::new(&key);
        let tag = gcm.seal_in_place(&nonce, &aad, &mut pt);
        assert_eq!(tag.to_vec(), hex("5bc94fbc3221a5db94fae95ae7121a47"));
    }

    #[test]
    fn seal_open_round_trip() {
        let gcm = AesGcm128::new(b"0123456789abcdef");
        let nonce = [7u8; 12];
        let aad = b"header";
        let original: Vec<u8> = (0..1000u32).map(|i| (i % 251) as u8).collect();
        let mut data = original.clone();
        let tag = gcm.seal_in_place(&nonce, aad, &mut data);
        assert_ne!(data, original, "ciphertext differs");
        assert!(gcm.open_in_place(&nonce, aad, &mut data, &tag));
        assert_eq!(data, original);
    }

    #[test]
    fn tampered_ciphertext_rejected() {
        let gcm = AesGcm128::new(b"0123456789abcdef");
        let nonce = [7u8; 12];
        let mut data = vec![42u8; 64];
        let tag = gcm.seal_in_place(&nonce, &[], &mut data);
        data[10] ^= 1;
        assert!(!gcm.open_in_place(&nonce, &[], &mut data, &tag));
        // Wrong AAD also rejected.
        data[10] ^= 1;
        assert!(!gcm.open_in_place(&nonce, b"x", &mut data, &tag));
        // Wrong nonce rejected.
        assert!(!gcm.open_in_place(&[8u8; 12], &[], &mut data, &tag));
        // Untampered passes.
        assert!(gcm.open_in_place(&nonce, &[], &mut data, &tag));
    }

    #[test]
    fn distinct_nonces_distinct_keystreams() {
        let gcm = AesGcm128::new(b"0123456789abcdef");
        let mut a = vec![0u8; 64];
        let mut b = vec![0u8; 64];
        gcm.seal_in_place(&[1u8; 12], &[], &mut a);
        gcm.seal_in_place(&[2u8; 12], &[], &mut b);
        assert_ne!(a, b);
    }
}
