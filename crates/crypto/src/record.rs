//! TLS-style record framing with TCP-sequence-derived nonces.
//!
//! The paper emulates TLS overheads by encrypting and authenticating
//! payload with dummy keys while leaving HTTP headers in plaintext
//! (§4.2). It chooses AES-GCM precisely because the GCM counter "can
//! be easily derived from the TCP sequence numbers, including for
//! retransmissions" (§3.2) — so a server that keeps no socket buffers
//! can re-fetch lost data from disk and re-encrypt it statelessly.
//!
//! This module implements that scheme: the stream is divided into
//! fixed-size records aligned on *stream byte offsets*; the nonce of
//! a record is `salt(4B) ‖ record_index(8B)`, and the record index is
//! `stream_offset / RECORD_PAYLOAD_MAX`. Any segment of the stream
//! can be (re-)encrypted knowing only the session key/salt and the
//! TCP sequence offset.

use crate::gcm::{AesGcm128, TAG_LEN};

/// Bytes of GCM tag per record.
pub const GCM_TAG_LEN: usize = TAG_LEN;
/// TLS record header (type, version, length).
pub const RECORD_HEADER_LEN: usize = 5;
/// Max plaintext per record. 16 KiB — one diskmap sweet-spot read
/// (§3.1.3) maps to exactly one record.
pub const RECORD_PAYLOAD_MAX: usize = 16 * 1024;

/// Per-record wire overhead.
#[must_use]
pub fn record_overhead() -> usize {
    RECORD_HEADER_LEN + GCM_TAG_LEN
}

/// Derive the GCM nonce for the record containing stream byte
/// `stream_offset`. Deterministic: a retransmission recomputes the
/// identical nonce, so the keystream matches what the client already
/// has.
#[must_use]
pub fn derive_nonce(salt: u32, stream_offset: u64) -> [u8; 12] {
    let record_index = stream_offset / RECORD_PAYLOAD_MAX as u64;
    let mut n = [0u8; 12];
    n[..4].copy_from_slice(&salt.to_be_bytes());
    n[4..].copy_from_slice(&record_index.to_be_bytes());
    n
}

/// A session's record cipher: key + salt, as negotiated by the (out
/// of scope, per the paper) TLS handshake.
pub struct RecordCipher {
    gcm: AesGcm128,
    salt: u32,
}

impl RecordCipher {
    #[must_use]
    pub fn new(key: &[u8; 16], salt: u32) -> Self {
        RecordCipher {
            gcm: AesGcm128::new(key),
            salt,
        }
    }

    /// Encrypt one record's payload in place. `stream_offset` is the
    /// byte offset of this record within the encrypted stream (must
    /// be record-aligned) and doubles as the AAD so records cannot be
    /// reordered.
    pub fn seal_record(&self, stream_offset: u64, payload: &mut [u8]) -> [u8; GCM_TAG_LEN] {
        assert!(payload.len() <= RECORD_PAYLOAD_MAX);
        assert_eq!(
            stream_offset % RECORD_PAYLOAD_MAX as u64,
            0,
            "records are aligned on stream offsets"
        );
        let nonce = derive_nonce(self.salt, stream_offset);
        self.gcm
            .seal_in_place(&nonce, &stream_offset.to_be_bytes(), payload)
    }

    /// Seal a run of stream-contiguous records in one pass.
    ///
    /// `payload` holds the plaintext of one or more consecutive
    /// records starting at the record-aligned `stream_offset`; every
    /// record is `RECORD_PAYLOAD_MAX` bytes except possibly the last.
    /// Tags are appended to `tags` (one per record, in order). The
    /// session's AES key schedule and GHASH tables are shared state:
    /// a completion sweep that gathered N ready records pays the
    /// cipher setup once for the whole batch instead of re-entering
    /// per record — the crypto half of the batched
    /// encrypt+packetize sweep.
    pub fn seal_records(
        &self,
        stream_offset: u64,
        payload: &mut [u8],
        tags: &mut Vec<[u8; GCM_TAG_LEN]>,
    ) {
        assert_eq!(
            stream_offset % RECORD_PAYLOAD_MAX as u64,
            0,
            "batch starts on a record boundary"
        );
        for (i, rec) in payload.chunks_mut(RECORD_PAYLOAD_MAX).enumerate() {
            tags.push(self.seal_record(stream_offset + (i * RECORD_PAYLOAD_MAX) as u64, rec));
        }
    }

    /// Decrypt + verify one record in place. Returns false on a bad
    /// tag.
    pub fn open_record(
        &self,
        stream_offset: u64,
        payload: &mut [u8],
        tag: &[u8; GCM_TAG_LEN],
    ) -> bool {
        let nonce = derive_nonce(self.salt, stream_offset);
        self.gcm
            .open_in_place(&nonce, &stream_offset.to_be_bytes(), payload, tag)
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn nonce_is_stable_within_record_and_changes_across() {
        let a = derive_nonce(7, 0);
        let b = derive_nonce(7, RECORD_PAYLOAD_MAX as u64 - 1);
        let c = derive_nonce(7, RECORD_PAYLOAD_MAX as u64);
        assert_eq!(a, b, "same record, same nonce");
        assert_ne!(a, c, "next record, next nonce");
        assert_ne!(derive_nonce(8, 0), a, "salt matters");
    }

    #[test]
    fn retransmission_reencrypts_identically() {
        // The core property §3.2 relies on: encrypt, "lose" the
        // buffer, re-encrypt fresh data from disk, get identical
        // ciphertext.
        let rc = RecordCipher::new(b"sessionkey123456", 0xDEAD_BEEF);
        let original: Vec<u8> = (0..16384u32).map(|i| (i % 256) as u8).collect();
        let off = 5 * RECORD_PAYLOAD_MAX as u64;

        let mut first = original.clone();
        let tag1 = rc.seal_record(off, &mut first);
        let mut retx = original.clone();
        let tag2 = rc.seal_record(off, &mut retx);
        assert_eq!(first, retx);
        assert_eq!(tag1, tag2);
    }

    #[test]
    fn records_cannot_be_transplanted() {
        let rc = RecordCipher::new(b"sessionkey123456", 1);
        let mut data = vec![9u8; 100];
        let tag = rc.seal_record(0, &mut data);
        // Replaying record 0's bytes at record 1's offset fails.
        assert!(!rc.open_record(RECORD_PAYLOAD_MAX as u64, &mut data, &tag));
        assert!(rc.open_record(0, &mut data, &tag));
        assert_eq!(data, vec![9u8; 100]);
    }

    #[test]
    #[should_panic(expected = "aligned")]
    fn unaligned_record_offset_asserts() {
        let rc = RecordCipher::new(b"sessionkey123456", 1);
        let mut data = vec![0u8; 10];
        rc.seal_record(100, &mut data);
    }

    #[test]
    fn batch_seal_matches_per_record_seal() {
        let rc = RecordCipher::new(b"sessionkey123456", 3);
        let base = 4 * RECORD_PAYLOAD_MAX as u64;
        let stream: Vec<u8> = (0..2 * RECORD_PAYLOAD_MAX + 777)
            .map(|i| (i * 17 % 256) as u8)
            .collect();

        let mut batch = stream.clone();
        let mut tags = Vec::new();
        rc.seal_records(base, &mut batch, &mut tags);
        assert_eq!(tags.len(), 3);

        let mut singly = stream.clone();
        for (i, rec) in singly.chunks_mut(RECORD_PAYLOAD_MAX).enumerate() {
            let tag = rc.seal_record(base + (i * RECORD_PAYLOAD_MAX) as u64, rec);
            assert_eq!(tag, tags[i]);
        }
        assert_eq!(batch, singly);
    }

    #[test]
    fn stream_split_into_records_round_trips() {
        let rc = RecordCipher::new(b"sessionkey123456", 2);
        let stream: Vec<u8> = (0..100_000u32).map(|i| (i * 31 % 256) as u8).collect();
        let mut reassembled = Vec::new();
        for (i, chunk) in stream.chunks(RECORD_PAYLOAD_MAX).enumerate() {
            let off = (i * RECORD_PAYLOAD_MAX) as u64;
            let mut ct = chunk.to_vec();
            let tag = rc.seal_record(off, &mut ct);
            assert!(rc.open_record(off, &mut ct, &tag));
            reassembled.extend_from_slice(&ct);
        }
        assert_eq!(reassembled, stream);
    }
}
