//! AES-128 block encryption.
//!
//! Two interchangeable backends: a portable software implementation
//! (S-box + xtime MixColumns) and an AES-NI path selected at runtime.
//! Only encryption is implemented — GCM never decrypts blocks.

/// The AES S-box.
static SBOX: [u8; 256] = {
    // Generated from the multiplicative inverse in GF(2^8) + affine
    // transform; values are the standard FIPS-197 table.
    [
        0x63, 0x7c, 0x77, 0x7b, 0xf2, 0x6b, 0x6f, 0xc5, 0x30, 0x01, 0x67, 0x2b, 0xfe, 0xd7, 0xab,
        0x76, 0xca, 0x82, 0xc9, 0x7d, 0xfa, 0x59, 0x47, 0xf0, 0xad, 0xd4, 0xa2, 0xaf, 0x9c, 0xa4,
        0x72, 0xc0, 0xb7, 0xfd, 0x93, 0x26, 0x36, 0x3f, 0xf7, 0xcc, 0x34, 0xa5, 0xe5, 0xf1, 0x71,
        0xd8, 0x31, 0x15, 0x04, 0xc7, 0x23, 0xc3, 0x18, 0x96, 0x05, 0x9a, 0x07, 0x12, 0x80, 0xe2,
        0xeb, 0x27, 0xb2, 0x75, 0x09, 0x83, 0x2c, 0x1a, 0x1b, 0x6e, 0x5a, 0xa0, 0x52, 0x3b, 0xd6,
        0xb3, 0x29, 0xe3, 0x2f, 0x84, 0x53, 0xd1, 0x00, 0xed, 0x20, 0xfc, 0xb1, 0x5b, 0x6a, 0xcb,
        0xbe, 0x39, 0x4a, 0x4c, 0x58, 0xcf, 0xd0, 0xef, 0xaa, 0xfb, 0x43, 0x4d, 0x33, 0x85, 0x45,
        0xf9, 0x02, 0x7f, 0x50, 0x3c, 0x9f, 0xa8, 0x51, 0xa3, 0x40, 0x8f, 0x92, 0x9d, 0x38, 0xf5,
        0xbc, 0xb6, 0xda, 0x21, 0x10, 0xff, 0xf3, 0xd2, 0xcd, 0x0c, 0x13, 0xec, 0x5f, 0x97, 0x44,
        0x17, 0xc4, 0xa7, 0x7e, 0x3d, 0x64, 0x5d, 0x19, 0x73, 0x60, 0x81, 0x4f, 0xdc, 0x22, 0x2a,
        0x90, 0x88, 0x46, 0xee, 0xb8, 0x14, 0xde, 0x5e, 0x0b, 0xdb, 0xe0, 0x32, 0x3a, 0x0a, 0x49,
        0x06, 0x24, 0x5c, 0xc2, 0xd3, 0xac, 0x62, 0x91, 0x95, 0xe4, 0x79, 0xe7, 0xc8, 0x37, 0x6d,
        0x8d, 0xd5, 0x4e, 0xa9, 0x6c, 0x56, 0xf4, 0xea, 0x65, 0x7a, 0xae, 0x08, 0xba, 0x78, 0x25,
        0x2e, 0x1c, 0xa6, 0xb4, 0xc6, 0xe8, 0xdd, 0x74, 0x1f, 0x4b, 0xbd, 0x8b, 0x8a, 0x70, 0x3e,
        0xb5, 0x66, 0x48, 0x03, 0xf6, 0x0e, 0x61, 0x35, 0x57, 0xb9, 0x86, 0xc1, 0x1d, 0x9e, 0xe1,
        0xf8, 0x98, 0x11, 0x69, 0xd9, 0x8e, 0x94, 0x9b, 0x1e, 0x87, 0xe9, 0xce, 0x55, 0x28, 0xdf,
        0x8c, 0xa1, 0x89, 0x0d, 0xbf, 0xe6, 0x42, 0x68, 0x41, 0x99, 0x2d, 0x0f, 0xb0, 0x54, 0xbb,
        0x16,
    ]
};

const RCON: [u8; 10] = [0x01, 0x02, 0x04, 0x08, 0x10, 0x20, 0x40, 0x80, 0x1b, 0x36];

#[inline]
fn xtime(b: u8) -> u8 {
    (b << 1) ^ (((b >> 7) & 1) * 0x1b)
}

/// An expanded AES-128 key (11 round keys).
#[derive(Clone)]
pub struct Aes128 {
    round_keys: [[u8; 16]; 11],
    use_ni: bool,
}

impl Aes128 {
    /// Expand `key` into the round-key schedule. Chooses the AES-NI
    /// backend automatically when the CPU supports it.
    #[must_use]
    pub fn new(key: &[u8; 16]) -> Self {
        let mut rk = [[0u8; 16]; 11];
        rk[0] = *key;
        for i in 1..11 {
            let prev = rk[i - 1];
            let mut t = [prev[12], prev[13], prev[14], prev[15]];
            // RotWord + SubWord + Rcon.
            t.rotate_left(1);
            for b in &mut t {
                *b = SBOX[*b as usize];
            }
            t[0] ^= RCON[i - 1];
            for j in 0..4 {
                rk[i][j] = prev[j] ^ t[j];
            }
            for j in 4..16 {
                rk[i][j] = prev[j] ^ rk[i][j - 4];
            }
        }
        Aes128 {
            round_keys: rk,
            use_ni: Self::ni_available(),
        }
    }

    /// Is the hardware AES path in use?
    #[must_use]
    pub fn ni_available() -> bool {
        #[cfg(target_arch = "x86_64")]
        {
            std::arch::is_x86_feature_detected!("aes")
        }
        #[cfg(not(target_arch = "x86_64"))]
        {
            false
        }
    }

    /// Force the portable backend (tests cross-check the two).
    #[must_use]
    pub fn portable(key: &[u8; 16]) -> Self {
        let mut a = Self::new(key);
        a.use_ni = false;
        a
    }

    /// Encrypt one block in place.
    pub fn encrypt_block(&self, block: &mut [u8; 16]) {
        #[cfg(target_arch = "x86_64")]
        if self.use_ni {
            // SAFETY: use_ni is only true when the `aes` feature was
            // detected at construction.
            unsafe { self.encrypt_block_ni(block) };
            return;
        }
        self.encrypt_block_portable(block);
    }

    fn encrypt_block_portable(&self, s: &mut [u8; 16]) {
        add_round_key(s, &self.round_keys[0]);
        for round in 1..10 {
            sub_bytes(s);
            shift_rows(s);
            mix_columns(s);
            add_round_key(s, &self.round_keys[round]);
        }
        sub_bytes(s);
        shift_rows(s);
        add_round_key(s, &self.round_keys[10]);
    }

    #[cfg(target_arch = "x86_64")]
    #[target_feature(enable = "aes")]
    unsafe fn encrypt_block_ni(&self, block: &mut [u8; 16]) {
        use std::arch::x86_64::*;
        let mut b = _mm_loadu_si128(block.as_ptr() as *const __m128i);
        let rk: Vec<__m128i> = self
            .round_keys
            .iter()
            .map(|k| _mm_loadu_si128(k.as_ptr() as *const __m128i))
            .collect();
        b = _mm_xor_si128(b, rk[0]);
        for k in rk.iter().take(10).skip(1) {
            b = _mm_aesenc_si128(b, *k);
        }
        b = _mm_aesenclast_si128(b, rk[10]);
        _mm_storeu_si128(block.as_mut_ptr() as *mut __m128i, b);
    }
}

#[inline]
fn add_round_key(s: &mut [u8; 16], k: &[u8; 16]) {
    for i in 0..16 {
        s[i] ^= k[i];
    }
}

#[inline]
fn sub_bytes(s: &mut [u8; 16]) {
    for b in s.iter_mut() {
        *b = SBOX[*b as usize];
    }
}

#[inline]
fn shift_rows(s: &mut [u8; 16]) {
    // State is column-major: byte (row r, col c) is s[4c + r].
    let t = *s;
    for r in 1..4 {
        for c in 0..4 {
            s[4 * c + r] = t[4 * ((c + r) % 4) + r];
        }
    }
}

#[inline]
fn mix_columns(s: &mut [u8; 16]) {
    for c in 0..4 {
        let col = [s[4 * c], s[4 * c + 1], s[4 * c + 2], s[4 * c + 3]];
        let x = [xtime(col[0]), xtime(col[1]), xtime(col[2]), xtime(col[3])];
        s[4 * c] = x[0] ^ (x[1] ^ col[1]) ^ col[2] ^ col[3];
        s[4 * c + 1] = col[0] ^ x[1] ^ (x[2] ^ col[2]) ^ col[3];
        s[4 * c + 2] = col[0] ^ col[1] ^ x[2] ^ (x[3] ^ col[3]);
        s[4 * c + 3] = (x[0] ^ col[0]) ^ col[1] ^ col[2] ^ x[3];
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    fn hex(s: &str) -> Vec<u8> {
        (0..s.len())
            .step_by(2)
            .map(|i| u8::from_str_radix(&s[i..i + 2], 16).unwrap())
            .collect()
    }

    #[test]
    fn fips197_vector() {
        // FIPS-197 Appendix C.1.
        let key: [u8; 16] = hex("000102030405060708090a0b0c0d0e0f").try_into().unwrap();
        let mut block: [u8; 16] = hex("00112233445566778899aabbccddeeff").try_into().unwrap();
        let aes = Aes128::portable(&key);
        aes.encrypt_block(&mut block);
        assert_eq!(block.to_vec(), hex("69c4e0d86a7b0430d8cdb78070b4c55a"));
    }

    #[test]
    fn ni_matches_portable() {
        if !Aes128::ni_available() {
            eprintln!("AES-NI not available; skipping cross-check");
            return;
        }
        let mut rng = dcn_simcore::SimRng::new(99);
        for _ in 0..200 {
            let mut key = [0u8; 16];
            let mut block = [0u8; 16];
            for b in &mut key {
                *b = rng.next_u64() as u8;
            }
            for b in &mut block {
                *b = rng.next_u64() as u8;
            }
            let ni = Aes128::new(&key);
            let sw = Aes128::portable(&key);
            let mut b1 = block;
            let mut b2 = block;
            ni.encrypt_block(&mut b1);
            sw.encrypt_block(&mut b2);
            assert_eq!(b1, b2);
        }
    }

    #[test]
    fn key_schedule_first_round_keys() {
        // FIPS-197 A.1: key expansion of 2b7e151628aed2a6abf7158809cf4f3c.
        let key: [u8; 16] = hex("2b7e151628aed2a6abf7158809cf4f3c").try_into().unwrap();
        let aes = Aes128::portable(&key);
        assert_eq!(
            aes.round_keys[1].to_vec(),
            hex("a0fafe1788542cb123a339392a6c7605")
        );
        assert_eq!(
            aes.round_keys[10].to_vec(),
            hex("d014f9a8c9ee2589e13f0cc8b6630ca6")
        );
    }

    #[test]
    fn different_keys_different_ciphertexts() {
        let a = Aes128::new(&[0u8; 16]);
        let b = Aes128::new(&[1u8; 16]);
        let mut x = [0u8; 16];
        let mut y = [0u8; 16];
        a.encrypt_block(&mut x);
        b.encrypt_block(&mut y);
        assert_ne!(x, y);
    }
}
