//! # dcn-crypto — AES-128-GCM for the streaming data path
//!
//! The paper streams over HTTPS using AES-128 in Galois/Counter Mode
//! (RFC 5288 ciphersuites), chosen specifically because GCM has **no
//! inter-packet dependencies**: the counter for any byte of the
//! stream can be derived from the TCP sequence number, so a
//! retransmitted segment can be re-encrypted statelessly after
//! re-fetching its data from disk (§3.2). This crate implements:
//!
//! * real AES-128 ([`aes`]): portable software implementation plus an
//!   AES-NI fast path with runtime detection, cross-checked against
//!   each other and the FIPS-197 vector;
//! * real GHASH/GCM ([`gcm`]): 4-bit-table GHASH, NIST-vector tested,
//!   with in-place seal/open;
//! * record framing and the TCP-sequence nonce derivation ([`record`])
//!   used by both Atlas (in-place, from diskmap buffers) and the
//!   kernel-TLS model (out-of-place, through the buffer cache);
//! * the cycle-cost hook: encryption work is charged at
//!   [`dcn_mem::CostParams::aes_gcm_cycles_per_byte`] with cache
//!   effects coming from the memory model, matching the paper's "1
//!   cycle/byte when warm in LLC" observation.

pub mod aes;
pub mod gcm;
pub mod record;

pub use aes::Aes128;
pub use gcm::AesGcm128;
pub use record::{derive_nonce, RecordCipher, GCM_TAG_LEN, RECORD_HEADER_LEN, RECORD_PAYLOAD_MAX};
