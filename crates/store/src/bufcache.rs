//! The conventional stack's disk buffer cache + VM pressure model.
//!
//! Page-granular (4 KiB) cache of file content with LRU reclamation.
//! Each resident page owns a physical region, so its cache-hierarchy
//! behaviour (LLC residency, evictions) is tracked by `dcn-mem` like
//! every other buffer in the system.
//!
//! The VM model captures §2.1.2: when the working set exceeds
//! capacity, every new page allocation must reclaim one, at
//! `vm_reclaim_page_cycles` plus a contention surcharge that grows
//! with core count (stock FreeBSD) or is damped (Netflix's fake-NUMA
//! partitioning and batched re-enqueueing).

use crate::catalog::FileId;
use dcn_mem::{CostParams, PhysAlloc, PhysRegion, CHUNK_SIZE};
use std::collections::HashMap;

/// A page key: (file, page index within the file).
type PageKey = (FileId, u64);

/// A resident cache page handed to sendfile.
#[derive(Clone, Copy, Debug)]
pub struct CachePageRef {
    pub region: PhysRegion,
    /// Pin count > 0 ⇒ not reclaimable (mapped into a socket buffer).
    pub pinned: bool,
}

struct Page {
    region: PhysRegion,
    /// LRU stamp; present in `by_stamp` only while unpinned
    /// (reclaimable). Pinned pages are not eligible for reclaim, so
    /// keeping them out of the index makes reclaim O(log n) instead
    /// of a scan past every pinned page.
    stamp: u64,
    pins: u32,
}

/// VM pressure statistics for one measurement window.
#[derive(Clone, Copy, Default, Debug)]
pub struct VmPressure {
    pub lookups: u64,
    pub hits: u64,
    pub inserts: u64,
    pub reclaims: u64,
    /// Allocations that had to spin on the reclaim path with every
    /// page pinned (the stall condition Netflix's patches attack).
    pub reclaim_stalls: u64,
}

/// The disk buffer cache.
pub struct BufferCache {
    capacity_pages: usize,
    pages: HashMap<PageKey, Page>,
    by_stamp: std::collections::BTreeMap<u64, PageKey>,
    next_stamp: u64,
    /// Pre-allocated page frames, recycled forever (the VM page
    /// pool).
    free_frames: Vec<PhysRegion>,
    pub stats: VmPressure,
}

impl BufferCache {
    /// A cache of `capacity_bytes` backed by pre-allocated frames.
    #[must_use]
    pub fn new(capacity_bytes: u64, phys: &mut PhysAlloc) -> Self {
        let capacity_pages = (capacity_bytes / CHUNK_SIZE) as usize;
        assert!(capacity_pages > 0);
        BufferCache {
            capacity_pages,
            pages: HashMap::new(),
            by_stamp: std::collections::BTreeMap::new(),
            next_stamp: 0,
            free_frames: (0..capacity_pages)
                .map(|_| phys.alloc(CHUNK_SIZE))
                .collect(),
            stats: VmPressure::default(),
        }
    }

    #[must_use]
    pub fn resident_pages(&self) -> usize {
        self.pages.len()
    }

    #[must_use]
    pub fn capacity_pages(&self) -> usize {
        self.capacity_pages
    }

    /// Fraction of frames an allocation could claim right now: free
    /// frames plus resident-but-unpinned (reclaimable) pages. 0.0
    /// means every page is pinned by socket buffers — the VM-pressure
    /// wedge the admission policy watches for.
    #[must_use]
    pub fn allocatable_frac(&self) -> f64 {
        (self.free_frames.len() + self.by_stamp.len()) as f64 / self.capacity_pages as f64
    }

    /// Cache hit ratio so far.
    #[must_use]
    pub fn hit_ratio(&self) -> f64 {
        if self.stats.lookups == 0 {
            0.0
        } else {
            self.stats.hits as f64 / self.stats.lookups as f64
        }
    }

    /// Look up the page holding `(file, page_index)`. A hit pins the
    /// page (removing it from the reclaimable set). Returns the page
    /// and the CPU cycles the lookup cost.
    pub fn lookup(
        &mut self,
        file: FileId,
        page: u64,
        costs: &CostParams,
    ) -> (Option<CachePageRef>, u64) {
        self.stats.lookups += 1;
        let key = (file, page);
        if let Some(p) = self.pages.get_mut(&key) {
            self.stats.hits += 1;
            if p.pins == 0 {
                self.by_stamp.remove(&p.stamp);
            }
            p.pins += 1;
            let r = CachePageRef {
                region: p.region,
                pinned: true,
            };
            (Some(r), costs.bufcache_page_cycles)
        } else {
            (None, costs.bufcache_page_cycles)
        }
    }

    /// Allocate (insert) a page for `(file, page_index)` about to be
    /// filled by disk I/O; the page comes back pinned. Returns the
    /// page and the cycles charged (lookup + any reclaim work,
    /// including the `contention` multiplier for `cores` cores).
    /// Panics when every page is pinned — callers that can back off
    /// should use [`BufferCache::try_insert`].
    pub fn insert(
        &mut self,
        file: FileId,
        page: u64,
        costs: &CostParams,
        cores: usize,
    ) -> (CachePageRef, u64) {
        self.try_insert(file, page, costs, cores)
            .expect("buffer cache wedged: every page pinned (socket buffers ate the VM)")
    }

    /// Like [`BufferCache::insert`], but returns None when no frame
    /// can be allocated (all pages pinned) — VM pressure the caller
    /// must absorb by stalling staging until ACKs unpin pages.
    pub fn try_insert(
        &mut self,
        file: FileId,
        page: u64,
        costs: &CostParams,
        cores: usize,
    ) -> Option<(CachePageRef, u64)> {
        let key = (file, page);
        self.stats.inserts += 1;
        let mut cycles = costs.bufcache_page_cycles;
        let frame = if let Some(f) = self.free_frames.pop() {
            f
        } else {
            if self.by_stamp.is_empty() {
                self.stats.reclaim_stalls += 1;
                return None;
            }
            // Reclaim the LRU unpinned page (proactive scan in the
            // allocation context, as the Netflix patches do).
            cycles += self.reclaim_one(costs, cores);
            self.free_frames.pop().expect("reclaim produced a frame")
        };
        let stamp = self.next_stamp;
        self.next_stamp += 1;
        if let Some(old) = self.pages.insert(
            key,
            Page {
                region: frame,
                stamp,
                pins: 1,
            },
        ) {
            // Racing insert of the same page: return the old frame.
            if old.pins == 0 {
                self.by_stamp.remove(&old.stamp);
            }
            self.free_frames.push(old.region);
        }
        // Pinned on insert: joins the reclaimable index at unpin.
        Some((
            CachePageRef {
                region: frame,
                pinned: true,
            },
            cycles,
        ))
    }

    fn reclaim_one(&mut self, costs: &CostParams, cores: usize) -> u64 {
        let contention = 1.0 + costs.vm_contention_per_core * cores.saturating_sub(1) as f64;
        // The reclaimable index holds only unpinned pages: the LRU
        // victim is its first entry (callers check non-empty).
        let (&stamp, &key) = self
            .by_stamp
            .iter()
            .next()
            .expect("caller checked reclaimable");
        let p = self.pages.remove(&key).expect("victim resident");
        debug_assert_eq!(p.pins, 0);
        self.by_stamp.remove(&stamp);
        self.free_frames.push(p.region);
        self.stats.reclaims += 1;
        (costs.vm_reclaim_page_cycles as f64 * contention) as u64
    }

    /// Unpin a page (socket buffer released it after the NIC consumed
    /// the data); it becomes reclaimable at MRU position.
    pub fn unpin(&mut self, file: FileId, page: u64) {
        let stamp = self.next_stamp;
        self.next_stamp += 1;
        if let Some(p) = self.pages.get_mut(&(file, page)) {
            assert!(p.pins > 0, "unpin of unpinned page");
            p.pins -= 1;
            if p.pins == 0 {
                p.stamp = stamp;
                self.by_stamp.insert(stamp, (file, page));
            }
        }
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    fn cache(pages: u64) -> (BufferCache, CostParams) {
        let mut phys = PhysAlloc::new();
        (
            BufferCache::new(pages * CHUNK_SIZE, &mut phys),
            CostParams::default(),
        )
    }

    #[test]
    fn miss_then_hit() {
        let (mut c, costs) = cache(8);
        let (miss, _) = c.lookup(FileId(1), 0, &costs);
        assert!(miss.is_none());
        let (_page, _) = c.insert(FileId(1), 0, &costs, 1);
        c.unpin(FileId(1), 0);
        let (hit, _) = c.lookup(FileId(1), 0, &costs);
        assert!(hit.is_some());
        assert_eq!(c.stats.hits, 1);
        assert!((c.hit_ratio() - 0.5).abs() < 1e-9);
    }

    #[test]
    fn lru_reclaim_picks_oldest_unpinned() {
        let (mut c, costs) = cache(3);
        for i in 0..3 {
            c.insert(FileId(i), 0, &costs, 1);
            c.unpin(FileId(i), 0);
        }
        // Touch file 0 so file 1 is LRU.
        c.lookup(FileId(0), 0, &costs);
        c.unpin(FileId(0), 0);
        let (_p, cycles) = c.insert(FileId(9), 0, &costs, 1);
        assert!(cycles > costs.bufcache_page_cycles, "reclaim work charged");
        assert!(c.lookup(FileId(1), 0, &costs).0.is_none(), "file 1 evicted");
        assert!(c.lookup(FileId(0), 0, &costs).0.is_some());
        assert_eq!(c.stats.reclaims, 1);
    }

    #[test]
    fn pinned_pages_survive_reclaim() {
        let (mut c, costs) = cache(2);
        c.insert(FileId(0), 0, &costs, 1); // stays pinned
        c.insert(FileId(1), 0, &costs, 1);
        c.unpin(FileId(1), 0);
        // Needs a frame: pinned file 0 is not reclaimable, file 1 is.
        c.insert(FileId(2), 0, &costs, 1);
        assert!(c.lookup(FileId(0), 0, &costs).0.is_some());
        assert!(c.lookup(FileId(1), 0, &costs).0.is_none());
        assert_eq!(c.stats.reclaims, 1);
    }

    #[test]
    fn contention_grows_with_cores() {
        let (mut c1, costs) = cache(1);
        c1.insert(FileId(0), 0, &costs, 1);
        c1.unpin(FileId(0), 0);
        let (_, cyc1) = c1.insert(FileId(1), 0, &costs, 1);

        let (mut c8, _) = cache(1);
        c8.insert(FileId(0), 0, &costs, 8);
        c8.unpin(FileId(0), 0);
        let (_, cyc8) = c8.insert(FileId(1), 0, &costs, 8);
        assert!(
            cyc8 > cyc1,
            "8-core reclaim must cost more ({cyc8} vs {cyc1})"
        );
    }

    #[test]
    fn frames_are_recycled_not_leaked() {
        let (mut c, costs) = cache(4);
        for i in 0..100 {
            c.insert(FileId(i), 0, &costs, 1);
            c.unpin(FileId(i), 0);
        }
        assert_eq!(c.resident_pages(), 4);
    }

    #[test]
    #[should_panic(expected = "wedged")]
    fn all_pinned_wedges_loudly() {
        let (mut c, costs) = cache(1);
        c.insert(FileId(0), 0, &costs, 1);
        c.insert(FileId(1), 0, &costs, 1);
    }

    #[test]
    fn try_insert_backs_off_when_all_pinned() {
        let (mut c, costs) = cache(1);
        c.insert(FileId(0), 0, &costs, 1);
        assert!(c.try_insert(FileId(1), 0, &costs, 1).is_none());
        // Unpinning makes progress possible again.
        c.unpin(FileId(0), 0);
        assert!(c.try_insert(FileId(1), 0, &costs, 1).is_some());
    }
}
