//! The flat-namespace content catalog (Atlas's "filesystem").
//!
//! No directories, no inodes, no indirection: file `f` of size `s`
//! occupies `ceil(s / LBA)` consecutive logical blocks on one disk,
//! at an extent base assigned round-robin across disks at catalog
//! build time. This is the paper's §3.2 design and also how the
//! conventional-stack model addresses disk blocks (their VFS layer
//! adds cost, not layout).

use dcn_nvme::{BlockBacking, LBA_SIZE};
use dcn_simcore::prf_bytes;

/// A file (video chunk) identifier.
#[derive(Clone, Copy, PartialEq, Eq, Hash, Debug, PartialOrd, Ord)]
pub struct FileId(pub u64);

/// Where a byte range of a file lives.
#[derive(Clone, Copy, Debug, PartialEq, Eq)]
pub struct ChunkLoc {
    /// Disk index in the kernel's device table.
    pub disk: usize,
    /// NVMe namespace on that disk.
    pub nsid: u32,
    /// Starting byte offset on the namespace (LBA-aligned).
    pub dev_offset: u64,
}

/// The catalog: `n_files` equal-sized files striped over `n_disks`.
///
/// The paper's workload uses ~300 KB files ("each corresponding to
/// the equivalent of a video chunk", §4); per-file placement spreads
/// load evenly, and within a file all blocks are consecutive on one
/// disk, so a chunk fetch is exactly one contiguous NVMe read.
#[derive(Clone, Debug)]
pub struct Catalog {
    n_files: u64,
    file_size: u64,
    n_disks: usize,
    /// Blocks each file's extent occupies (rounded up to LBA).
    extent_lbas: u64,
    seed: u64,
}

impl Catalog {
    #[must_use]
    pub fn new(n_files: u64, file_size: u64, n_disks: usize, seed: u64) -> Self {
        assert!(n_files > 0 && file_size > 0 && n_disks > 0);
        Catalog {
            n_files,
            file_size,
            n_disks,
            extent_lbas: file_size.div_ceil(LBA_SIZE),
            seed,
        }
    }

    /// The paper's evaluation catalog: 300 KB chunks over 4 disks,
    /// sized so the catalog far exceeds RAM (0% BC workloads always
    /// miss).
    #[must_use]
    pub fn paper(seed: u64) -> Self {
        // 2 million chunks ≈ 600 GB of content.
        Catalog::new(2_000_000, 300 * 1024, 4, seed)
    }

    #[must_use]
    pub fn n_files(&self) -> u64 {
        self.n_files
    }
    #[must_use]
    pub fn file_size(&self) -> u64 {
        self.file_size
    }
    #[must_use]
    pub fn n_disks(&self) -> usize {
        self.n_disks
    }

    /// Locate `offset` within `file`. Panics on out-of-range access —
    /// the HTTP layer validates requests first.
    #[must_use]
    pub fn locate(&self, file: FileId, offset: u64) -> ChunkLoc {
        assert!(file.0 < self.n_files, "no such file {file:?}");
        assert!(offset < self.file_size, "offset {offset} beyond file size");
        let disk = (file.0 % self.n_disks as u64) as usize;
        let index_on_disk = file.0 / self.n_disks as u64;
        let base_lba = index_on_disk * self.extent_lbas;
        ChunkLoc {
            disk,
            nsid: 1,
            dev_offset: base_lba * LBA_SIZE + (offset / LBA_SIZE) * LBA_SIZE,
        }
    }

    /// LBA-aligned read covering `[offset, offset+len)` of the file:
    /// returns (location, aligned length, byte slack before `offset`).
    #[must_use]
    pub fn read_span(&self, file: FileId, offset: u64, len: u64) -> (ChunkLoc, u64, u64) {
        let loc = self.locate(file, offset);
        let pre = offset % LBA_SIZE;
        let aligned = (pre + len).div_ceil(LBA_SIZE) * LBA_SIZE;
        (
            loc,
            aligned.min((self.file_size - (offset - pre)).div_ceil(LBA_SIZE) * LBA_SIZE),
            pre,
        )
    }

    /// Expected content of `file` at `offset` — verification oracle
    /// for clients: must equal what any tier returns through any
    /// stack. A pure function of (file id, offset) — no placement
    /// lookup and no prebuilt table — so the oracle exists even for
    /// cold objects whose bytes never materialize on the hot tier
    /// (they are synthesized on demand by whichever backend serves
    /// the fetch).
    pub fn expected(&self, file: FileId, offset: u64, out: &mut [u8]) {
        assert!(file.0 < self.n_files, "no such file {file:?}");
        prf_bytes(self.file_seed(file), offset, out);
    }

    /// Per-file content seed: the PRF stream key for `file`'s bytes.
    /// Every storage backend (NVMe flat namespace, cold object store,
    /// hot-chunk cache) serves bytes from this same function, so
    /// promotion and demotion can never change content.
    #[must_use]
    pub fn file_seed(&self, file: FileId) -> u64 {
        // SplitMix64-style mix so nearby ids give unrelated streams.
        let mut z = self
            .seed
            .wrapping_add(file.0.wrapping_mul(0x9E37_79B9_7F4A_7C15));
        z = (z ^ (z >> 30)).wrapping_mul(0xBF58_476D_1CE4_E5B9);
        z = (z ^ (z >> 27)).wrapping_mul(0x94D0_49BB_1331_11EB);
        z ^ (z >> 31) ^ 0xCA7A_1060_0000_0000
    }

    /// Bytes each file's extent occupies on disk (LBA-rounded).
    #[must_use]
    pub fn extent_bytes(&self) -> u64 {
        self.extent_lbas * LBA_SIZE
    }
}

/// [`BlockBacking`] that serves the catalog's content convention from
/// raw device coordinates: it inverts the placement function —
/// (disk, LBA) → (file, in-file offset) — and synthesizes that file's
/// PRF bytes. This is what the hot tier's NVMe devices are built
/// with, so disk reads, cold-store fetches, and the client oracle all
/// agree byte-for-byte.
pub struct CatalogBacking {
    catalog: Catalog,
    disk: usize,
}

impl CatalogBacking {
    #[must_use]
    pub fn new(catalog: &Catalog, disk: usize) -> Self {
        assert!(disk < catalog.n_disks());
        CatalogBacking {
            catalog: catalog.clone(),
            disk,
        }
    }
}

impl BlockBacking for CatalogBacking {
    fn read(&self, _nsid: u32, lba: u64, offset: u64, out: &mut [u8]) {
        let extent = self.catalog.extent_bytes();
        let mut pos = lba * LBA_SIZE + offset;
        let mut done = 0usize;
        while done < out.len() {
            let index_on_disk = pos / extent;
            let file = FileId(index_on_disk * self.catalog.n_disks() as u64 + self.disk as u64);
            let in_file = pos % extent;
            // Tail slack past file_size (LBA rounding) and reads past
            // the last extent continue the same PRF streams: never
            // verified, but deterministic.
            let n = ((extent - in_file) as usize).min(out.len() - done);
            prf_bytes(
                self.catalog.file_seed(file),
                in_file,
                &mut out[done..done + n],
            );
            done += n;
            pos += n as u64;
        }
    }

    fn write(&mut self, _nsid: u32, _lba: u64, _offset: u64, _data: &[u8]) {
        panic!("CatalogBacking is read-only (the streaming catalog is immutable)");
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn files_stripe_round_robin() {
        let c = Catalog::new(100, 300 * 1024, 4, 7);
        assert_eq!(c.locate(FileId(0), 0).disk, 0);
        assert_eq!(c.locate(FileId(1), 0).disk, 1);
        assert_eq!(c.locate(FileId(5), 0).disk, 1);
    }

    #[test]
    fn extents_are_consecutive_and_disjoint() {
        let c = Catalog::new(100, 300 * 1024, 4, 7);
        // Files 0 and 4 are consecutive extents on disk 0.
        let a = c.locate(FileId(0), 0);
        let b = c.locate(FileId(4), 0);
        let extent_bytes = (300 * 1024u64).div_ceil(LBA_SIZE) * LBA_SIZE;
        assert_eq!(b.dev_offset - a.dev_offset, extent_bytes);
        // Offsets within a file are consecutive.
        let mid = c.locate(FileId(0), 150 * 1024);
        assert_eq!(mid.dev_offset - a.dev_offset, 150 * 1024);
    }

    #[test]
    fn read_span_aligns_to_lba() {
        let c = Catalog::new(100, 300 * 1024, 4, 7);
        let (loc, aligned, pre) = c.read_span(FileId(3), 1000, 16 * 1024);
        assert_eq!(pre, 1000 % LBA_SIZE);
        assert_eq!(loc.dev_offset % LBA_SIZE, 0);
        assert!(aligned >= 16 * 1024);
        assert_eq!(aligned % LBA_SIZE, 0);
    }

    #[test]
    #[should_panic(expected = "beyond file size")]
    fn out_of_range_offset_panics() {
        let c = Catalog::new(100, 300 * 1024, 4, 7);
        let _ = c.locate(FileId(0), 400 * 1024);
    }

    #[test]
    fn backing_serves_the_oracle_bytes() {
        // A disk read at the placement coordinates must return exactly
        // what the client oracle predicts, including unaligned offsets
        // and extent boundaries.
        let c = Catalog::new(100, 300 * 1024, 4, 7);
        for (file, off, len) in [
            (FileId(0), 0u64, 4096usize),
            (FileId(5), 1000, 2000),
            (FileId(9), 300 * 1024 - 100, 100),
            (FileId(42), 150 * 1024 + 17, 8192),
        ] {
            let loc = c.locate(file, off);
            let backing = CatalogBacking::new(&c, loc.disk);
            let mut via_disk = vec![0u8; len];
            backing.read(
                loc.nsid,
                loc.dev_offset / LBA_SIZE,
                off % LBA_SIZE,
                &mut via_disk,
            );
            let mut via_oracle = vec![0u8; len];
            c.expected(file, off, &mut via_oracle);
            assert_eq!(via_disk, via_oracle, "{file:?} @{off}+{len}");
        }
    }

    #[test]
    fn oracle_needs_no_placement_for_any_object() {
        // A million-object catalog: the oracle for the very last file
        // is computable without touching any per-object state.
        let c = Catalog::new(1_000_000, 300 * 1024, 4, 7);
        let mut a = vec![0u8; 256];
        c.expected(FileId(999_999), 12_345, &mut a);
        let mut b = vec![0u8; 256];
        c.expected(FileId(999_999), 12_345, &mut b);
        assert_eq!(a, b);
        assert!(a.iter().any(|&x| x != 0));
    }

    #[test]
    fn expected_content_is_deterministic_and_positional() {
        let c = Catalog::new(100, 300 * 1024, 4, 7);
        let mut whole = vec![0u8; 2048];
        c.expected(FileId(9), 0, &mut whole);
        let mut tail = vec![0u8; 1024];
        c.expected(FileId(9), 1024, &mut tail);
        assert_eq!(&whole[1024..], &tail[..]);
        // Different files differ.
        let mut other = vec![0u8; 2048];
        c.expected(FileId(10), 0, &mut other);
        assert_ne!(whole, other);
    }
}
