//! The flat-namespace content catalog (Atlas's "filesystem").
//!
//! No directories, no inodes, no indirection: file `f` of size `s`
//! occupies `ceil(s / LBA)` consecutive logical blocks on one disk,
//! at an extent base assigned round-robin across disks at catalog
//! build time. This is the paper's §3.2 design and also how the
//! conventional-stack model addresses disk blocks (their VFS layer
//! adds cost, not layout).

use dcn_nvme::{SyntheticBacking, LBA_SIZE};

/// A file (video chunk) identifier.
#[derive(Clone, Copy, PartialEq, Eq, Hash, Debug, PartialOrd, Ord)]
pub struct FileId(pub u64);

/// Where a byte range of a file lives.
#[derive(Clone, Copy, Debug, PartialEq, Eq)]
pub struct ChunkLoc {
    /// Disk index in the kernel's device table.
    pub disk: usize,
    /// NVMe namespace on that disk.
    pub nsid: u32,
    /// Starting byte offset on the namespace (LBA-aligned).
    pub dev_offset: u64,
}

/// The catalog: `n_files` equal-sized files striped over `n_disks`.
///
/// The paper's workload uses ~300 KB files ("each corresponding to
/// the equivalent of a video chunk", §4); per-file placement spreads
/// load evenly, and within a file all blocks are consecutive on one
/// disk, so a chunk fetch is exactly one contiguous NVMe read.
#[derive(Clone, Debug)]
pub struct Catalog {
    n_files: u64,
    file_size: u64,
    n_disks: usize,
    /// Blocks each file's extent occupies (rounded up to LBA).
    extent_lbas: u64,
    seed: u64,
}

impl Catalog {
    #[must_use]
    pub fn new(n_files: u64, file_size: u64, n_disks: usize, seed: u64) -> Self {
        assert!(n_files > 0 && file_size > 0 && n_disks > 0);
        Catalog {
            n_files,
            file_size,
            n_disks,
            extent_lbas: file_size.div_ceil(LBA_SIZE),
            seed,
        }
    }

    /// The paper's evaluation catalog: 300 KB chunks over 4 disks,
    /// sized so the catalog far exceeds RAM (0% BC workloads always
    /// miss).
    #[must_use]
    pub fn paper(seed: u64) -> Self {
        // 2 million chunks ≈ 600 GB of content.
        Catalog::new(2_000_000, 300 * 1024, 4, seed)
    }

    #[must_use]
    pub fn n_files(&self) -> u64 {
        self.n_files
    }
    #[must_use]
    pub fn file_size(&self) -> u64 {
        self.file_size
    }
    #[must_use]
    pub fn n_disks(&self) -> usize {
        self.n_disks
    }

    /// Locate `offset` within `file`. Panics on out-of-range access —
    /// the HTTP layer validates requests first.
    #[must_use]
    pub fn locate(&self, file: FileId, offset: u64) -> ChunkLoc {
        assert!(file.0 < self.n_files, "no such file {file:?}");
        assert!(offset < self.file_size, "offset {offset} beyond file size");
        let disk = (file.0 % self.n_disks as u64) as usize;
        let index_on_disk = file.0 / self.n_disks as u64;
        let base_lba = index_on_disk * self.extent_lbas;
        ChunkLoc {
            disk,
            nsid: 1,
            dev_offset: base_lba * LBA_SIZE + (offset / LBA_SIZE) * LBA_SIZE,
        }
    }

    /// LBA-aligned read covering `[offset, offset+len)` of the file:
    /// returns (location, aligned length, byte slack before `offset`).
    #[must_use]
    pub fn read_span(&self, file: FileId, offset: u64, len: u64) -> (ChunkLoc, u64, u64) {
        let loc = self.locate(file, offset);
        let pre = offset % LBA_SIZE;
        let aligned = (pre + len).div_ceil(LBA_SIZE) * LBA_SIZE;
        (
            loc,
            aligned.min((self.file_size - (offset - pre)).div_ceil(LBA_SIZE) * LBA_SIZE),
            pre,
        )
    }

    /// Expected content of `file` at `offset` — verification oracle
    /// for clients: must equal what the disks return through any
    /// stack.
    pub fn expected(&self, file: FileId, offset: u64, out: &mut [u8]) {
        let loc = self.locate(file, offset);
        // Content is whatever the synthetic backing stores at the
        // file's extent (disk seed convention: seed + disk index).
        let backing = SyntheticBacking::new(self.seed + loc.disk as u64);
        backing.expected(loc.nsid, loc.dev_offset + offset % LBA_SIZE, out);
    }

    /// Seed convention for the disks backing this catalog.
    #[must_use]
    pub fn disk_seed(&self, disk: usize) -> u64 {
        self.seed + disk as u64
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn files_stripe_round_robin() {
        let c = Catalog::new(100, 300 * 1024, 4, 7);
        assert_eq!(c.locate(FileId(0), 0).disk, 0);
        assert_eq!(c.locate(FileId(1), 0).disk, 1);
        assert_eq!(c.locate(FileId(5), 0).disk, 1);
    }

    #[test]
    fn extents_are_consecutive_and_disjoint() {
        let c = Catalog::new(100, 300 * 1024, 4, 7);
        // Files 0 and 4 are consecutive extents on disk 0.
        let a = c.locate(FileId(0), 0);
        let b = c.locate(FileId(4), 0);
        let extent_bytes = (300 * 1024u64).div_ceil(LBA_SIZE) * LBA_SIZE;
        assert_eq!(b.dev_offset - a.dev_offset, extent_bytes);
        // Offsets within a file are consecutive.
        let mid = c.locate(FileId(0), 150 * 1024);
        assert_eq!(mid.dev_offset - a.dev_offset, 150 * 1024);
    }

    #[test]
    fn read_span_aligns_to_lba() {
        let c = Catalog::new(100, 300 * 1024, 4, 7);
        let (loc, aligned, pre) = c.read_span(FileId(3), 1000, 16 * 1024);
        assert_eq!(pre, 1000 % LBA_SIZE);
        assert_eq!(loc.dev_offset % LBA_SIZE, 0);
        assert!(aligned >= 16 * 1024);
        assert_eq!(aligned % LBA_SIZE, 0);
    }

    #[test]
    #[should_panic(expected = "beyond file size")]
    fn out_of_range_offset_panics() {
        let c = Catalog::new(100, 300 * 1024, 4, 7);
        let _ = c.locate(FileId(0), 400 * 1024);
    }

    #[test]
    fn expected_content_is_deterministic_and_positional() {
        let c = Catalog::new(100, 300 * 1024, 4, 7);
        let mut whole = vec![0u8; 2048];
        c.expected(FileId(9), 0, &mut whole);
        let mut tail = vec![0u8; 1024];
        c.expected(FileId(9), 1024, &mut tail);
        assert_eq!(&whole[1024..], &tail[..]);
        // Different files differ.
        let mut other = vec![0u8; 2048];
        c.expected(FileId(10), 0, &mut other);
        assert_ne!(whole, other);
    }
}
