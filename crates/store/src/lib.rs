//! # dcn-store — content storage layers for both stacks
//!
//! Two very different storage designs sit above the same NVMe disks,
//! mirroring the paper's comparison:
//!
//! * [`catalog`] — Atlas's storage: "disks are treated as flat
//!   namespaces, and files are laid out in consecutive disk blocks"
//!   (§3.2). A [`catalog::Catalog`] maps (file, offset) → (disk,
//!   LBA) directly, files are striped across the four disks at file
//!   granularity, and content is the synthetic PRF stream so any
//!   received byte can be verified.
//! * [`bufcache`] — the conventional stack's VFS-lite + disk buffer
//!   cache: page-granular lookup, LRU reclamation, hit/miss
//!   accounting, and the VM pressure model (§2.1.2) whose reclaim
//!   cost grows when the working set thrashes.
//! * [`abr`] — the multi-bitrate (DASH) view of the flat catalog:
//!   an [`abr::AbrManifest`] carves titles × segments × quality
//!   rungs out of the chunk namespace, so adaptive clients and the
//!   stream verifier agree on which chunk range encodes which
//!   (segment, rung) without any server-side changes.

pub mod abr;
pub mod bufcache;
pub mod catalog;

pub use abr::AbrManifest;
pub use bufcache::{BufferCache, CachePageRef, VmPressure};
pub use catalog::{Catalog, CatalogBacking, ChunkLoc, FileId};
