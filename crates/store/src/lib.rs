//! # dcn-store — content storage layers for both stacks
//!
//! Two very different storage designs sit above the same NVMe disks,
//! mirroring the paper's comparison:
//!
//! * [`catalog`] — Atlas's storage: "disks are treated as flat
//!   namespaces, and files are laid out in consecutive disk blocks"
//!   (§3.2). A [`catalog::Catalog`] maps (file, offset) → (disk,
//!   LBA) directly, files are striped across the four disks at file
//!   granularity, and content is the synthetic PRF stream so any
//!   received byte can be verified.
//! * [`bufcache`] — the conventional stack's VFS-lite + disk buffer
//!   cache: page-granular lookup, LRU reclamation, hit/miss
//!   accounting, and the VM pressure model (§2.1.2) whose reclaim
//!   cost grows when the working set thrashes.

pub mod bufcache;
pub mod catalog;

pub use bufcache::{BufferCache, CachePageRef, VmPressure};
pub use catalog::{Catalog, ChunkLoc, FileId};
