//! Multi-bitrate (ABR/DASH) catalog layout over the flat namespace.
//!
//! Adaptive streaming stores the *same* content at several quality
//! ladders ("rungs") and lets the client pick a rung per segment. The
//! flat catalog stays exactly what the paper built — equal-sized
//! chunks, one contiguous extent each — and this manifest carves it
//! the way a DASH packager lays out an origin bucket: each title owns
//! a contiguous run of chunks; within a title, segments are laid out
//! in playout order; within a segment, the rungs' chunk ranges sit
//! back to back, lowest rung first.
//!
//! A rung's "bitrate" falls out of the geometry: rung `r` of a
//! segment spans `ladder[r]` whole catalog chunks, and one segment
//! represents `seg_duration` of playout, so
//! `bitrate_r = ladder[r] · chunk_size · 8 / seg_duration`. Clients
//! fetch whole chunks (`GET /chunk/<id>`), so the server-side request
//! path is untouched — the manifest is client/verifier knowledge, the
//! way a real MPD is.

use crate::catalog::{Catalog, FileId};
use dcn_simcore::Nanos;

/// The manifest: maps `(title, segment, rung)` to the chunk range
/// that stores it. Pure arithmetic over the flat catalog — cheap to
/// clone, trivially consistent across clients, servers and the
/// verifier.
#[derive(Clone, Debug, PartialEq)]
pub struct AbrManifest {
    /// Chunks per segment at each rung, strictly ascending (rung 0 is
    /// the lowest bitrate).
    ladder: Vec<u32>,
    /// Segments per title (playout wraps around at the end — an
    /// endless loop channel, which keeps long runs in steady state).
    segs_per_title: u32,
    /// Playout duration one segment represents.
    seg_duration: Nanos,
    /// Underlying chunk (catalog file) size in bytes.
    chunk_size: u64,
    /// Titles carved out of the catalog.
    n_titles: u64,
    /// Sum of the ladder: chunks one segment occupies across rungs.
    chunks_per_seg: u64,
}

impl AbrManifest {
    /// Carve `catalog` into as many titles as fit. Panics if the
    /// ladder is empty/not ascending or the catalog is too small for
    /// even one title.
    #[must_use]
    pub fn carve(
        catalog: &Catalog,
        ladder: &[u32],
        segs_per_title: u32,
        seg_duration: Nanos,
    ) -> Self {
        assert!(!ladder.is_empty() && segs_per_title > 0);
        assert!(seg_duration > Nanos::ZERO);
        assert!(
            ladder.windows(2).all(|w| w[0] < w[1]),
            "ladder must be strictly ascending: {ladder:?}"
        );
        assert!(ladder[0] > 0, "rung 0 must span at least one chunk");
        let chunks_per_seg: u64 = ladder.iter().map(|&c| u64::from(c)).sum();
        let chunks_per_title = chunks_per_seg * u64::from(segs_per_title);
        let n_titles = catalog.n_files() / chunks_per_title;
        assert!(
            n_titles > 0,
            "catalog of {} chunks cannot hold one title of {chunks_per_title}",
            catalog.n_files()
        );
        AbrManifest {
            ladder: ladder.to_vec(),
            segs_per_title,
            seg_duration,
            chunk_size: catalog.file_size(),
            n_titles,
            chunks_per_seg,
        }
    }

    /// The default evaluation ladder: four rungs at 1/2/4/8 chunks
    /// per segment (a 2-4-8× bitrate spread, like a 240p→1080p DASH
    /// ladder), 50 ms of playout per segment so sub-second simulated
    /// runs cover many ABR decisions.
    #[must_use]
    pub fn eval(catalog: &Catalog) -> Self {
        Self::carve(catalog, &[1, 2, 4, 8], 64, Nanos::from_millis(50))
    }

    #[must_use]
    pub fn n_rungs(&self) -> usize {
        self.ladder.len()
    }
    #[must_use]
    pub fn n_titles(&self) -> u64 {
        self.n_titles
    }
    #[must_use]
    pub fn segs_per_title(&self) -> u32 {
        self.segs_per_title
    }
    #[must_use]
    pub fn seg_duration(&self) -> Nanos {
        self.seg_duration
    }
    #[must_use]
    pub fn chunk_size(&self) -> u64 {
        self.chunk_size
    }

    /// Chunks rung `rung` of any segment spans.
    #[must_use]
    pub fn chunks_at(&self, rung: usize) -> u32 {
        self.ladder[rung]
    }

    /// Bytes one segment occupies at `rung`.
    #[must_use]
    pub fn seg_bytes(&self, rung: usize) -> u64 {
        u64::from(self.ladder[rung]) * self.chunk_size
    }

    /// Encoded bitrate of `rung` in bits/sec (geometry-derived).
    #[must_use]
    pub fn bitrate_bps(&self, rung: usize) -> f64 {
        self.seg_bytes(rung) as f64 * 8.0 / self.seg_duration.as_secs_f64()
    }

    /// The chunk range storing `(title, seg, rung)`: first chunk id
    /// and chunk count. Panics on out-of-range coordinates.
    #[must_use]
    pub fn rung_range(&self, title: u64, seg: u32, rung: usize) -> (FileId, u32) {
        assert!(title < self.n_titles, "no such title {title}");
        assert!(seg < self.segs_per_title, "no such segment {seg}");
        let rung_off: u64 = self.ladder[..rung].iter().map(|&c| u64::from(c)).sum();
        let base = title * self.chunks_per_seg * u64::from(self.segs_per_title)
            + u64::from(seg) * self.chunks_per_seg
            + rung_off;
        (FileId(base), self.ladder[rung])
    }

    /// Does `file` belong to the chunk range of `(title, seg, rung)`?
    /// The verifier's wrong-rung check.
    #[must_use]
    pub fn in_rung(&self, file: FileId, title: u64, seg: u32, rung: usize) -> bool {
        let (start, count) = self.rung_range(title, seg, rung);
        file.0 >= start.0 && file.0 < start.0 + u64::from(count)
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    fn manifest() -> AbrManifest {
        // 1000 chunks; one title = (1+2+4)*8 = 56 chunks → 17 titles.
        let cat = Catalog::new(1000, 300 * 1024, 4, 7);
        AbrManifest::carve(&cat, &[1, 2, 4], 8, Nanos::from_millis(50))
    }

    #[test]
    fn rung_ranges_tile_each_segment_without_overlap() {
        let m = manifest();
        let mut seen = std::collections::HashSet::new();
        for title in 0..m.n_titles() {
            for seg in 0..m.segs_per_title() {
                for rung in 0..m.n_rungs() {
                    let (start, count) = m.rung_range(title, seg, rung);
                    for i in 0..u64::from(count) {
                        assert!(
                            seen.insert(start.0 + i),
                            "chunk {} claimed twice",
                            start.0 + i
                        );
                    }
                }
            }
        }
        // Titles tile the front of the catalog contiguously.
        assert_eq!(seen.len() as u64, m.n_titles() * 56);
        assert!(seen.contains(&0) && seen.contains(&(m.n_titles() * 56 - 1)));
    }

    #[test]
    fn bitrates_ascend_with_the_ladder() {
        let m = manifest();
        for r in 1..m.n_rungs() {
            assert!(m.bitrate_bps(r) > m.bitrate_bps(r - 1));
        }
        // Geometry check: rung 0 is one 300 KiB chunk per 50 ms.
        let want = 300.0 * 1024.0 * 8.0 / 0.050;
        assert!((m.bitrate_bps(0) - want).abs() < 1.0);
    }

    #[test]
    fn in_rung_accepts_own_range_and_rejects_neighbours() {
        let m = manifest();
        let (start, count) = m.rung_range(2, 3, 1);
        assert!(m.in_rung(start, 2, 3, 1));
        assert!(m.in_rung(FileId(start.0 + u64::from(count) - 1), 2, 3, 1));
        assert!(!m.in_rung(FileId(start.0 + u64::from(count)), 2, 3, 1));
        // The same chunk is NOT part of another rung of the segment.
        assert!(!m.in_rung(start, 2, 3, 0));
        assert!(!m.in_rung(start, 2, 3, 2));
    }

    #[test]
    #[should_panic(expected = "ascending")]
    fn non_ascending_ladder_is_rejected() {
        let cat = Catalog::new(1000, 300 * 1024, 4, 7);
        let _ = AbrManifest::carve(&cat, &[2, 2], 8, Nanos::from_millis(50));
    }

    #[test]
    #[should_panic(expected = "cannot hold one title")]
    fn too_small_catalog_is_rejected() {
        let cat = Catalog::new(10, 300 * 1024, 4, 7);
        let _ = AbrManifest::carve(&cat, &[1, 2, 4], 8, Nanos::from_millis(50));
    }
}
