//! # dcn-srvcore — shared server control core
//!
//! Policy and control-loop machinery common to both stacks (the Atlas
//! stack in `dcn-atlas` and the FreeBSD/nginx model in `dcn-kstack`):
//!
//! * [`overload`] — hysteretic admission control and the degradation
//!   ladder (moved here from `dcn-atlas` so both stacks share one
//!   implementation instead of kstack importing Atlas policy).
//! * [`autotune`] — the online I/O-window autotuner: a deterministic,
//!   seeded per-core controller that drives the fetch watermark and
//!   the in-flight read cap from EWMAs of NVMe completion latency and
//!   submission-queue occupancy, replacing the paper's hand-tuned
//!   fixed 10×MSS constant.
//! * [`control`] — the per-core control-loop skeleton (admission at
//!   SYN, 503-while-shedding, conn open/close accounting, sweep
//!   cadence) expressed once as a trait with provided methods; each
//!   server supplies only its resource snapshot and storage.

pub mod autotune;
pub mod control;
pub mod overload;

pub use autotune::{AutotuneConfig, IoTuner};
pub use control::{ControlPlane, CoreControl};
pub use overload::{AdmissionConfig, LadderLevel, OverloadState, ResourceSnapshot};
