//! Online I/O-window autotuner.
//!
//! The paper fixes the fetch watermark at 10×MSS (§3.2): once a
//! connection's usable congestion window falls below it, the stack
//! stops issuing new disk reads. That constant was hand-tuned for one
//! P3700 at one RTT mix, and `examples/tune_io_window.rs` used to
//! re-derive it by manual sweep. This module closes the loop online:
//! a per-core controller watches two signals the stack already has in
//! hand on every completion —
//!
//! * **NVMe completion latency** (submit→complete, straight off the
//!   completion record), tracked as an integer EWMA against a decaying
//!   minimum ("base") that stands in for the drive's unloaded service
//!   time, and
//! * **submission-queue occupancy** (in-flight commands / queue
//!   depth), tracked as the peak since the last adjustment,
//!
//! and every `adjust_period` completions nudges two knobs between a
//! floor and a ceiling:
//!
//! * the **watermark** — the minimum usable window before the next
//!   fetch is issued. Lower = issue earlier and deeper, hiding disk
//!   latency behind congestion-window growth; higher = hold back,
//!   pinning fewer DMA buffers per connection.
//! * the **in-flight cap** — the per-core bound on outstanding reads.
//!
//! The policy is a classic gradient probe: while the drive looks
//! unloaded (EWMA ≤ base × `latency_queue_x100`/100) and the SQ has
//! headroom, decay the watermark toward the floor and widen the cap;
//! when latency inflates past the queueing threshold or the SQ peak
//! crosses `sq_target_x100`, back off multiplicatively. A fast drive
//! therefore converges near the floor (maximum prefetch overlap), a
//! saturated or slow drive settles higher — the operating-point
//! argument of the paper's Fig 6, discovered rather than hand-picked.
//!
//! Everything is integer arithmetic and the only randomness is a
//! seeded [`SimRng`] dithering the adjustment period (so cores don't
//! move in lockstep); two runs with the same seed are bit-identical,
//! which the replay tests assert.

use dcn_simcore::SimRng;

/// Autotuner knobs. `enabled: false` (the default) makes the tuner a
/// transparent pass-through of the configured fixed watermark, so
/// existing configs reproduce the paper's constant exactly.
#[derive(Clone, Copy, Debug)]
pub struct AutotuneConfig {
    pub enabled: bool,
    /// Watermark floor: never require less usable window than this
    /// before issuing (2×MSS keeps at least one segment clocked out
    /// between fetch decisions).
    pub floor_watermark: u64,
    /// Watermark ceiling: never require more than this.
    pub ceiling_watermark: u64,
    /// In-flight read cap bounds (per core, across its queues).
    pub min_inflight: u32,
    pub max_inflight: u32,
    /// Completions between adjustments (dithered ±25% per step).
    pub adjust_period: u32,
    /// Queueing threshold: back off once the latency EWMA exceeds
    /// base × this / 100.
    pub latency_queue_x100: u64,
    /// SQ-occupancy threshold (percent) above which we back off.
    pub sq_target_x100: u64,
    /// EWMA gain as a right-shift: ewma += (sample - ewma) >> shift.
    pub ewma_shift: u32,
}

impl Default for AutotuneConfig {
    fn default() -> Self {
        AutotuneConfig {
            enabled: false,
            floor_watermark: 2 * 1448,
            ceiling_watermark: 32 * 1448,
            min_inflight: 4,
            max_inflight: 64,
            adjust_period: 32,
            latency_queue_x100: 150,
            sq_target_x100: 75,
            ewma_shift: 3,
        }
    }
}

impl AutotuneConfig {
    /// The configuration the benchmarks use: tuning on, everything
    /// else at the defaults.
    #[must_use]
    pub fn on() -> Self {
        AutotuneConfig {
            enabled: true,
            ..AutotuneConfig::default()
        }
    }
}

/// Per-core tuner state. Deterministic: integer EWMAs plus a seeded
/// RNG used only to dither the adjustment period.
#[derive(Debug)]
pub struct IoTuner {
    cfg: AutotuneConfig,
    /// The configured fixed watermark, returned verbatim when tuning
    /// is off and used as the starting point when it is on.
    fixed: u64,
    wm: u64,
    cap: u32,
    /// EWMA of submit→complete latency (ns); 0 = no sample yet.
    ewma_lat: u64,
    /// Decaying minimum of the EWMA — the unloaded-service-time
    /// estimate the queueing threshold is relative to.
    base_lat: u64,
    /// Peak SQ occupancy (percent) since the last adjustment.
    occ_peak_x100: u64,
    seen: u32,
    next_adjust: u32,
    adjustments: u64,
    rng: SimRng,
}

impl IoTuner {
    #[must_use]
    pub fn new(cfg: AutotuneConfig, fixed_watermark: u64, seed: u64) -> Self {
        let mut rng = SimRng::new(seed ^ 0x0107_u64.wrapping_mul(0x9E37_79B9_7F4A_7C15));
        let next_adjust = Self::dither(&cfg, &mut rng);
        IoTuner {
            cfg,
            fixed: fixed_watermark,
            wm: fixed_watermark.clamp(cfg.floor_watermark, cfg.ceiling_watermark),
            cap: cfg.max_inflight,
            ewma_lat: 0,
            base_lat: 0,
            occ_peak_x100: 0,
            seen: 0,
            next_adjust,
            adjustments: 0,
            rng,
        }
    }

    fn dither(cfg: &AutotuneConfig, rng: &mut SimRng) -> u32 {
        let p = u64::from(cfg.adjust_period.max(4));
        // period ± 25%, never below 4 completions.
        (rng.gen_range(p - p / 4, p + p / 4 + 1) as u32).max(4)
    }

    /// Current fetch watermark (bytes of usable window required before
    /// the next read is issued).
    #[must_use]
    pub fn watermark(&self) -> u64 {
        if self.cfg.enabled {
            self.wm
        } else {
            self.fixed
        }
    }

    /// Current per-core in-flight read cap. `u32::MAX` when tuning is
    /// off (the stack's natural pool/queue limits apply unchanged).
    #[must_use]
    pub fn inflight_cap(&self) -> u32 {
        if self.cfg.enabled {
            self.cap
        } else {
            u32::MAX
        }
    }

    /// Feed one NVMe completion: its submit→complete latency and the
    /// queue's occupancy at completion-drain time.
    pub fn observe_completion(&mut self, latency_ns: u64, inflight: usize, queue_depth: usize) {
        if !self.cfg.enabled {
            return;
        }
        let lat = latency_ns.max(1);
        if self.ewma_lat == 0 {
            self.ewma_lat = lat;
        } else {
            let delta = lat as i64 - self.ewma_lat as i64;
            self.ewma_lat = (self.ewma_lat as i64 + (delta >> self.cfg.ewma_shift)) as u64;
        }
        if self.base_lat == 0 || self.ewma_lat < self.base_lat {
            self.base_lat = self.ewma_lat.max(1);
        }
        let occ = (inflight as u64 * 100) / queue_depth.max(1) as u64;
        self.occ_peak_x100 = self.occ_peak_x100.max(occ);
        self.seen += 1;
        if self.seen >= self.next_adjust {
            self.adjust();
        }
    }

    fn adjust(&mut self) {
        let queued = self.ewma_lat > self.base_lat * self.cfg.latency_queue_x100 / 100;
        let occ_high = self.occ_peak_x100 > self.cfg.sq_target_x100;
        if queued || occ_high {
            // Multiplicative back-off: demand more window headroom
            // before issuing, and narrow the in-flight cap.
            self.wm = (self.wm + (self.wm / 4).max(1)).min(self.cfg.ceiling_watermark);
            self.cap = self
                .cap
                .saturating_sub((self.cap / 4).max(1))
                .max(self.cfg.min_inflight);
        } else {
            // Healthy: issue earlier (decay toward the floor) and
            // widen the cap additively. The base estimate also creeps
            // upward here — only in healthy regimes — so a genuinely
            // slower drive (firmware aging, thermal throttle)
            // re-bases instead of reading as permanent queueing,
            // while sustained queueing keeps the base frozen.
            self.wm = self
                .wm
                .saturating_sub((self.wm / 8).max(1))
                .max(self.cfg.floor_watermark);
            self.cap = (self.cap + 1).min(self.cfg.max_inflight);
            self.base_lat += self.base_lat >> 6;
        }
        self.occ_peak_x100 = 0;
        self.seen = 0;
        self.next_adjust = Self::dither(&self.cfg, &mut self.rng);
        self.adjustments += 1;
    }

    /// Latency EWMA (ns) — 0 before the first completion.
    #[must_use]
    pub fn ewma_latency_ns(&self) -> u64 {
        self.ewma_lat
    }

    /// Unloaded-service-time estimate (ns).
    #[must_use]
    pub fn base_latency_ns(&self) -> u64 {
        self.base_lat
    }

    /// Number of adjustment steps taken so far.
    #[must_use]
    pub fn adjustments(&self) -> u64 {
        self.adjustments
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    fn on() -> AutotuneConfig {
        AutotuneConfig::on()
    }

    #[test]
    fn disabled_tuner_is_a_pass_through() {
        let mut t = IoTuner::new(AutotuneConfig::default(), 14_480, 7);
        for _ in 0..1000 {
            t.observe_completion(1_000_000, 60, 64);
        }
        assert_eq!(t.watermark(), 14_480);
        assert_eq!(t.inflight_cap(), u32::MAX);
        assert_eq!(t.adjustments(), 0);
    }

    #[test]
    fn fast_unloaded_drive_converges_to_the_floor() {
        let cfg = on();
        let mut t = IoTuner::new(cfg, 14_480, 7);
        for _ in 0..2000 {
            t.observe_completion(80_000, 2, 1024);
        }
        assert_eq!(t.watermark(), cfg.floor_watermark);
        assert_eq!(t.inflight_cap(), cfg.max_inflight);
    }

    #[test]
    fn queueing_latency_backs_the_window_off() {
        let cfg = on();
        let mut t = IoTuner::new(cfg, 14_480, 7);
        // Establish a fast base…
        for _ in 0..500 {
            t.observe_completion(80_000, 2, 1024);
        }
        // …then latency inflates 10×: the tuner must retreat from the
        // floor and shrink the cap.
        for _ in 0..2000 {
            t.observe_completion(800_000, 2, 1024);
        }
        assert!(t.watermark() > cfg.floor_watermark, "wm={}", t.watermark());
        assert_eq!(t.inflight_cap(), cfg.min_inflight);
    }

    #[test]
    fn sq_saturation_backs_off_even_at_base_latency() {
        let cfg = on();
        let mut t = IoTuner::new(cfg, 14_480, 7);
        for _ in 0..500 {
            t.observe_completion(80_000, 2, 64);
        }
        let wm_before = t.watermark();
        for _ in 0..500 {
            t.observe_completion(80_000, 60, 64); // 94% occupancy
        }
        assert!(t.watermark() > wm_before);
    }

    #[test]
    fn same_seed_same_trajectory() {
        let cfg = on();
        let run = |seed| {
            let mut t = IoTuner::new(cfg, 14_480, seed);
            let mut points = Vec::new();
            for i in 0..1000u64 {
                t.observe_completion(80_000 + (i % 7) * 1000, (i % 9) as usize, 64);
                points.push((t.watermark(), t.inflight_cap(), t.ewma_latency_ns()));
            }
            points
        };
        assert_eq!(run(42), run(42));
        assert_ne!(run(42), run(43), "seed must matter to the dither");
    }

    #[test]
    fn bounds_are_respected_under_adversarial_input() {
        let cfg = on();
        let mut t = IoTuner::new(cfg, 14_480, 9);
        for i in 0..5000u64 {
            let lat = if i % 2 == 0 { 1 } else { 100_000_000 };
            t.observe_completion(lat, (i % 128) as usize, 64);
            assert!(t.watermark() >= cfg.floor_watermark);
            assert!(t.watermark() <= cfg.ceiling_watermark);
            assert!(t.inflight_cap() >= cfg.min_inflight);
            assert!(t.inflight_cap() <= cfg.max_inflight);
        }
    }
}
