//! The per-core control-loop skeleton shared by both stacks.
//!
//! Atlas and the kstack model grew the same scaffolding
//! independently: a per-core overload state fed by resource
//! snapshots, an admit-or-RST decision at SYN, a 503-while-shedding
//! gate at request start, live-connection accounting, and (new in
//! this revision) a per-core I/O tuner. This trait expresses that
//! skeleton once; a server implements the four storage/snapshot
//! accessors and inherits the policy methods, so the two stacks can
//! no longer drift apart on admission semantics.

use crate::autotune::IoTuner;
use crate::overload::{AdmissionConfig, OverloadState, ResourceSnapshot};

/// Everything the control loop keeps per core.
#[derive(Debug)]
pub struct CoreControl {
    pub overload: OverloadState,
    pub tuner: IoTuner,
    pub live_conns: usize,
}

impl CoreControl {
    #[must_use]
    pub fn new(tuner: IoTuner) -> Self {
        CoreControl {
            overload: OverloadState::default(),
            tuner,
            live_conns: 0,
        }
    }
}

/// The shared control-plane skeleton. Implementors provide storage
/// and a resource snapshot; the provided methods are the policy.
pub trait ControlPlane {
    /// The admission knobs (copied out so provided methods can hold
    /// `&mut self`).
    fn admission_cfg(&self) -> AdmissionConfig;
    fn n_cores(&self) -> usize;
    /// One fresh observation of the core's resources.
    fn resource_snapshot(&self, core: usize) -> ResourceSnapshot;
    fn core_control(&mut self, core: usize) -> &mut CoreControl;
    fn core_control_ref(&self, core: usize) -> &CoreControl;

    /// Admission decision for one SYN on `core`; refreshes the
    /// watermark latch from a fresh snapshot as a side effect.
    fn admit_syn(&mut self, core: usize) -> bool {
        let cfg = self.admission_cfg();
        let snap = self.resource_snapshot(core);
        self.core_control(core).overload.admit(&cfg, snap)
    }

    /// Should a request arriving now on `core` be deferred with a
    /// 503? Refreshes the latch first so the decision reflects the
    /// present, not the last sweep.
    fn defer_request(&mut self, core: usize) -> bool {
        let cfg = self.admission_cfg();
        let snap = self.resource_snapshot(core);
        let ctl = self.core_control(core);
        ctl.overload.observe(&cfg, snap);
        ctl.overload.is_shedding()
    }

    /// Is any core shedding? (Cluster dispatchers treat the server as
    /// draining while true.)
    fn any_shedding(&self) -> bool {
        (0..self.n_cores()).any(|c| self.core_control_ref(c).overload.is_shedding())
    }

    fn note_conn_opened(&mut self, core: usize) {
        self.core_control(core).live_conns += 1;
    }

    fn note_conn_closed(&mut self, core: usize) {
        let ctl = self.core_control(core);
        ctl.live_conns = ctl.live_conns.saturating_sub(1);
    }

    /// Feed one NVMe completion to the core's I/O tuner.
    fn observe_io_completion(
        &mut self,
        core: usize,
        latency_ns: u64,
        inflight: usize,
        queue_depth: usize,
    ) {
        self.core_control(core)
            .tuner
            .observe_completion(latency_ns, inflight, queue_depth);
    }

    /// The core's current fetch watermark (tuned or fixed).
    fn io_watermark(&self, core: usize) -> u64 {
        self.core_control_ref(core).tuner.watermark()
    }

    /// The core's current in-flight read cap (`u32::MAX` = untuned).
    fn io_inflight_cap(&self, core: usize) -> u32 {
        self.core_control_ref(core).tuner.inflight_cap()
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::autotune::AutotuneConfig;

    struct Toy {
        cfg: AdmissionConfig,
        ctl: Vec<CoreControl>,
        pool_free: f64,
    }

    impl ControlPlane for Toy {
        fn admission_cfg(&self) -> AdmissionConfig {
            self.cfg
        }
        fn n_cores(&self) -> usize {
            self.ctl.len()
        }
        fn resource_snapshot(&self, core: usize) -> ResourceSnapshot {
            ResourceSnapshot {
                conns: self.ctl[core].live_conns,
                pool_free_frac: self.pool_free,
                sq_occupancy: 0.0,
            }
        }
        fn core_control(&mut self, core: usize) -> &mut CoreControl {
            &mut self.ctl[core]
        }
        fn core_control_ref(&self, core: usize) -> &CoreControl {
            &self.ctl[core]
        }
    }

    fn toy(cores: usize) -> Toy {
        Toy {
            cfg: AdmissionConfig::default(),
            ctl: (0..cores)
                .map(|c| {
                    CoreControl::new(IoTuner::new(AutotuneConfig::default(), 14_480, c as u64))
                })
                .collect(),
            pool_free: 0.9,
        }
    }

    #[test]
    fn skeleton_admits_then_sheds_under_pool_pressure() {
        let mut t = toy(2);
        assert!(t.admit_syn(0));
        t.note_conn_opened(0);
        assert!(!t.defer_request(0));
        assert!(!t.any_shedding());
        t.pool_free = 0.0;
        assert!(!t.admit_syn(0), "pool exhausted: refuse");
        assert!(t.defer_request(0));
        assert!(t.any_shedding());
        // The other core is independent.
        assert_eq!(t.core_control_ref(1).live_conns, 0);
    }

    #[test]
    fn conn_accounting_saturates_at_zero() {
        let mut t = toy(1);
        t.note_conn_closed(0);
        assert_eq!(t.core_control_ref(0).live_conns, 0);
        t.note_conn_opened(0);
        t.note_conn_closed(0);
        assert_eq!(t.core_control_ref(0).live_conns, 0);
    }
}
