//! Overload protection: hysteretic admission control and the
//! degradation ladder.
//!
//! Atlas has no buffer cache to absorb bursts — every live connection
//! pins DMA buffers and NVMe queue slots (PAPER.md §3), so past
//! saturation the stack must *shed* rather than thrash. This module is
//! the pure-logic policy half: the server feeds it per-core resource
//! observations (connection count, DMA-pool free fraction, NVMe SQ
//! occupancy) and it answers "admit this SYN?" and "which rung of the
//! degradation ladder are we on?". The server owns the mechanism half
//! (RSTs, 503s, conn reaping) in `server.rs`.
//!
//! Watermarks are hysteretic: shedding *enters* when a resource
//! crosses its enter threshold and only *exits* once every resource is
//! back past its (more generous) exit threshold, so the server doesn't
//! flap admit/shed at the boundary. Under sustained pressure the
//! ladder escalates one rung per `ladder_escalate_sweeps` sweeps:
//! shed-new → reap-idle → abort-slowest; it de-escalates one rung per
//! pressure-free sweep.

use dcn_simcore::Nanos;

/// Per-core admission + slow-client policy knobs.
///
/// Defaults are deliberately generous: they never engage in the
/// ordinary benchmark scenarios (sub-second runs, connection counts in
/// the hundreds) and exist as a backstop. Overload scenarios tighten
/// them explicitly.
#[derive(Clone, Copy, Debug)]
pub struct AdmissionConfig {
    /// Hard cap on established connections per core; SYNs beyond it
    /// are refused with RST.
    pub max_conns_per_core: usize,
    /// Enter shedding when the core's DMA-pool free fraction drops
    /// below this…
    pub pool_low_enter: f64,
    /// …and only stop shedding once it recovers above this.
    pub pool_low_exit: f64,
    /// Enter shedding when NVMe submission-queue occupancy (inflight
    /// commands / queue depth) exceeds this…
    pub sq_high_enter: f64,
    /// …and only stop once it falls below this.
    pub sq_high_exit: f64,
    /// A connection that completes the handshake but never delivers a
    /// full request head within this deadline is reaped (slowloris
    /// defense).
    pub header_timeout: Nanos,
    /// A keepalive connection with no response in flight and no
    /// activity for this long is reaped.
    pub idle_timeout: Nanos,
    /// Minimum drain rate for a connection that is pinning DMA
    /// buffers: measured over `drain_window`, an ACK-progress rate
    /// below this aborts the connection and returns its buffers.
    /// 0 disables the check.
    pub min_drain_bytes_per_sec: u64,
    /// Measurement window for the drain-rate check.
    pub drain_window: Nanos,
    /// How often the server sweeps connections for the deadlines
    /// above and re-evaluates the ladder.
    pub sweep_interval: Nanos,
    /// Backoff advertised on 503 responses (`Retry-After`).
    pub retry_after: Nanos,
    /// DMA buffers per queue held back for retransmit re-fetches, so
    /// a connection in RTO recovery is never starved behind fresh
    /// fetches from newly admitted connections.
    pub retx_reserve_bufs: u32,
    /// Sweeps of sustained pressure per ladder escalation.
    pub ladder_escalate_sweeps: u32,
}

impl Default for AdmissionConfig {
    fn default() -> Self {
        AdmissionConfig {
            max_conns_per_core: 4096,
            pool_low_enter: 0.02,
            pool_low_exit: 0.10,
            sq_high_enter: 0.95,
            sq_high_exit: 0.75,
            header_timeout: Nanos::from_secs(1),
            idle_timeout: Nanos::from_secs(5),
            min_drain_bytes_per_sec: 512,
            drain_window: Nanos::from_secs(1),
            sweep_interval: Nanos::from_millis(50),
            retry_after: Nanos::from_millis(200),
            retx_reserve_bufs: 2,
            ladder_escalate_sweeps: 2,
        }
    }
}

/// Degradation-ladder rung, least to most aggressive.
#[derive(Clone, Copy, Debug, PartialEq, Eq, PartialOrd, Ord)]
pub enum LadderLevel {
    /// No resource pressure.
    Normal,
    /// Refuse new connections (RST at SYN) and defer new requests on
    /// existing connections (503 + Retry-After).
    ShedNew,
    /// Additionally reap idle keepalive connections early to free
    /// their slots.
    ReapIdle,
    /// Additionally abort the slowest-draining buffer-holding
    /// connection each sweep — it is pinning the DMA buffers the rest
    /// of the core needs.
    AbortSlowest,
}

/// One snapshot of a core's resources, fed to the policy.
#[derive(Clone, Copy, Debug)]
pub struct ResourceSnapshot {
    pub conns: usize,
    /// Free fraction of the core's DMA buffer pool (min across its
    /// per-disk queues — one starved queue is enough to stall fills).
    pub pool_free_frac: f64,
    /// NVMe submission-queue occupancy, max across the core's queues.
    pub sq_occupancy: f64,
}

/// Per-core hysteretic overload state.
#[derive(Debug)]
pub struct OverloadState {
    /// Resource-pressure latch (pool / SQ watermarks).
    latched: bool,
    level: LadderLevel,
    /// Consecutive sweeps the latch has been held.
    pressure_sweeps: u32,
}

impl Default for OverloadState {
    fn default() -> Self {
        OverloadState {
            latched: false,
            level: LadderLevel::Normal,
            pressure_sweeps: 0,
        }
    }
}

impl OverloadState {
    /// Update the watermark latch from a fresh snapshot.
    pub fn observe(&mut self, cfg: &AdmissionConfig, snap: ResourceSnapshot) {
        if self.latched {
            // Exit only once *every* resource is comfortably back.
            if snap.pool_free_frac > cfg.pool_low_exit && snap.sq_occupancy < cfg.sq_high_exit {
                self.latched = false;
            }
        } else if snap.pool_free_frac < cfg.pool_low_enter || snap.sq_occupancy > cfg.sq_high_enter
        {
            self.latched = true;
        }
    }

    /// Admission decision for one SYN. Refuses when the watermark
    /// latch is held or the core is at its connection cap. (The cap
    /// needs no hysteresis: it clears exactly when a slot frees.)
    pub fn admit(&mut self, cfg: &AdmissionConfig, snap: ResourceSnapshot) -> bool {
        self.observe(cfg, snap);
        !self.latched && snap.conns < cfg.max_conns_per_core
    }

    /// Periodic sweep tick: walk the ladder. Returns the new level.
    /// Escalation keys on the *resource* latch, not the connection
    /// cap — a full-but-healthy server sheds new conns without ever
    /// churning the admitted ones.
    pub fn on_sweep(&mut self, cfg: &AdmissionConfig) -> LadderLevel {
        if self.latched {
            self.pressure_sweeps += 1;
            if self
                .pressure_sweeps
                .is_multiple_of(cfg.ladder_escalate_sweeps.max(1))
            {
                self.level = match self.level {
                    LadderLevel::Normal => LadderLevel::ShedNew,
                    LadderLevel::ShedNew => LadderLevel::ReapIdle,
                    _ => LadderLevel::AbortSlowest,
                };
            } else if self.level == LadderLevel::Normal {
                self.level = LadderLevel::ShedNew;
            }
        } else {
            self.pressure_sweeps = 0;
            self.level = match self.level {
                LadderLevel::AbortSlowest => LadderLevel::ReapIdle,
                LadderLevel::ReapIdle => LadderLevel::ShedNew,
                _ => LadderLevel::Normal,
            };
        }
        self.level
    }

    #[must_use]
    pub fn level(&self) -> LadderLevel {
        self.level
    }

    /// Is the resource-pressure latch held?
    #[must_use]
    pub fn latched(&self) -> bool {
        self.latched
    }

    /// Should the cluster dispatcher treat this core as draining?
    /// True while shedding for resource reasons or walking the ladder.
    #[must_use]
    pub fn is_shedding(&self) -> bool {
        self.latched || self.level > LadderLevel::Normal
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    fn snap(conns: usize, pool: f64, sq: f64) -> ResourceSnapshot {
        ResourceSnapshot {
            conns,
            pool_free_frac: pool,
            sq_occupancy: sq,
        }
    }

    #[test]
    fn admits_under_normal_conditions() {
        let cfg = AdmissionConfig::default();
        let mut st = OverloadState::default();
        assert!(st.admit(&cfg, snap(10, 0.9, 0.1)));
        assert!(!st.is_shedding());
    }

    #[test]
    fn conn_cap_refuses_without_latching() {
        let cfg = AdmissionConfig {
            max_conns_per_core: 8,
            ..AdmissionConfig::default()
        };
        let mut st = OverloadState::default();
        assert!(!st.admit(&cfg, snap(8, 0.9, 0.1)));
        assert!(!st.latched(), "cap is not resource pressure");
        // A slot frees: admission resumes immediately, no hysteresis.
        assert!(st.admit(&cfg, snap(7, 0.9, 0.1)));
    }

    #[test]
    fn pool_watermark_is_hysteretic() {
        let cfg = AdmissionConfig::default(); // enter < 0.02, exit > 0.10
        let mut st = OverloadState::default();
        assert!(!st.admit(&cfg, snap(1, 0.01, 0.0)), "below enter: shed");
        // Recovery between enter and exit: still shedding.
        assert!(!st.admit(&cfg, snap(1, 0.05, 0.0)));
        // Past exit: admits again.
        assert!(st.admit(&cfg, snap(1, 0.2, 0.0)));
    }

    #[test]
    fn sq_watermark_is_hysteretic() {
        let cfg = AdmissionConfig::default(); // enter > 0.95, exit < 0.75
        let mut st = OverloadState::default();
        assert!(!st.admit(&cfg, snap(1, 0.9, 0.99)));
        assert!(!st.admit(&cfg, snap(1, 0.9, 0.8)), "between exit and enter");
        assert!(st.admit(&cfg, snap(1, 0.9, 0.5)));
    }

    #[test]
    fn exit_requires_all_resources_healthy() {
        let cfg = AdmissionConfig::default();
        let mut st = OverloadState::default();
        st.observe(&cfg, snap(1, 0.01, 0.99)); // both pressured
        assert!(st.latched());
        st.observe(&cfg, snap(1, 0.5, 0.9)); // pool fine, SQ still high
        assert!(st.latched());
        st.observe(&cfg, snap(1, 0.5, 0.1));
        assert!(!st.latched());
    }

    #[test]
    fn ladder_escalates_under_sustained_pressure_then_recovers() {
        let cfg = AdmissionConfig {
            ladder_escalate_sweeps: 2,
            ..AdmissionConfig::default()
        };
        let mut st = OverloadState::default();
        st.observe(&cfg, snap(1, 0.0, 0.0));
        assert_eq!(st.on_sweep(&cfg), LadderLevel::ShedNew);
        assert_eq!(st.on_sweep(&cfg), LadderLevel::ReapIdle);
        assert_eq!(st.on_sweep(&cfg), LadderLevel::ReapIdle);
        assert_eq!(st.on_sweep(&cfg), LadderLevel::AbortSlowest);
        assert_eq!(st.on_sweep(&cfg), LadderLevel::AbortSlowest, "saturates");
        assert!(st.is_shedding());
        // Pressure clears: one rung back per sweep.
        st.observe(&cfg, snap(1, 0.9, 0.0));
        assert_eq!(st.on_sweep(&cfg), LadderLevel::ReapIdle);
        assert_eq!(st.on_sweep(&cfg), LadderLevel::ShedNew);
        assert_eq!(st.on_sweep(&cfg), LadderLevel::Normal);
        assert!(!st.is_shedding());
    }

    #[test]
    fn single_pressure_sweep_sheds_new_immediately() {
        let cfg = AdmissionConfig {
            ladder_escalate_sweeps: 4,
            ..AdmissionConfig::default()
        };
        let mut st = OverloadState::default();
        st.observe(&cfg, snap(1, 0.0, 0.0));
        // Even before the first escalation boundary, pressure means at
        // least shed-new.
        assert_eq!(st.on_sweep(&cfg), LadderLevel::ShedNew);
    }

    #[test]
    fn default_config_never_engages_in_ordinary_runs() {
        let cfg = AdmissionConfig::default();
        let mut st = OverloadState::default();
        // Typical healthy observation from the existing benchmarks.
        for _ in 0..100 {
            assert!(st.admit(&cfg, snap(64, 0.85, 0.3)));
            assert_eq!(st.on_sweep(&cfg), LadderLevel::Normal);
        }
    }
}
