//! Sparse simulated host DRAM contents.
//!
//! The cache model in [`crate::llc`] tracks *residency*; this module
//! stores the actual *bytes* at physical addresses, so DMA in the
//! simulation really moves data: the NVMe model writes video content
//! into diskmap buffers, the TCP stack encrypts it in place, the NIC
//! reads frames out, and the client verifies every byte.
//!
//! Storage is a sparse page map — only pages that were ever written
//! exist — so a simulated multi-terabyte address space costs memory
//! proportional to the live working set.

use crate::phys::{PhysAddr, PhysRegion, CHUNK_SIZE};
use std::collections::HashMap;

const PAGE: usize = CHUNK_SIZE as usize;

/// Byte-addressable sparse physical memory.
#[derive(Default)]
pub struct HostMem {
    pages: HashMap<u64, Box<[u8; PAGE]>>,
}

impl HostMem {
    #[must_use]
    pub fn new() -> Self {
        Self::default()
    }

    /// Number of materialized 4 KiB pages (diagnostics).
    #[must_use]
    pub fn resident_pages(&self) -> usize {
        self.pages.len()
    }

    fn page_mut(&mut self, pno: u64) -> &mut [u8; PAGE] {
        self.pages
            .entry(pno)
            .or_insert_with(|| Box::new([0u8; PAGE]))
    }

    /// Copy `data` into memory at `addr` (scatter across pages).
    pub fn write(&mut self, addr: PhysAddr, data: &[u8]) {
        let mut off = 0usize;
        let mut pos = addr.0;
        while off < data.len() {
            let pno = pos / CHUNK_SIZE;
            let in_page = (pos % CHUNK_SIZE) as usize;
            let n = (PAGE - in_page).min(data.len() - off);
            self.page_mut(pno)[in_page..in_page + n].copy_from_slice(&data[off..off + n]);
            off += n;
            pos += n as u64;
        }
    }

    /// Copy memory at `addr` into `out` (gather across pages). Pages
    /// never written read as zeros.
    pub fn read(&self, addr: PhysAddr, out: &mut [u8]) {
        let mut off = 0usize;
        let mut pos = addr.0;
        while off < out.len() {
            let pno = pos / CHUNK_SIZE;
            let in_page = (pos % CHUNK_SIZE) as usize;
            let n = (PAGE - in_page).min(out.len() - off);
            match self.pages.get(&pno) {
                Some(p) => out[off..off + n].copy_from_slice(&p[in_page..in_page + n]),
                None => out[off..off + n].fill(0),
            }
            off += n;
            pos += n as u64;
        }
    }

    /// Read an entire region into a fresh Vec.
    #[must_use]
    pub fn read_region(&self, region: PhysRegion) -> Vec<u8> {
        let mut v = vec![0u8; region.len as usize];
        self.read(region.addr, &mut v);
        v
    }

    /// Mutate a region in place (gather → closure → scatter). Used for
    /// in-place encryption: the closure sees the full contiguous
    /// logical buffer even when it spans pages.
    pub fn update_region<R>(&mut self, region: PhysRegion, f: impl FnOnce(&mut [u8]) -> R) -> R {
        let mut v = self.read_region(region);
        let r = f(&mut v);
        self.write(region.addr, &v);
        r
    }

    /// Fill a region by generator: `f(byte_offset_within_region, out)`.
    pub fn fill_region(&mut self, region: PhysRegion, f: impl FnOnce(&mut [u8])) {
        let mut v = vec![0u8; region.len as usize];
        f(&mut v);
        self.write(region.addr, &v);
    }

    /// Copy `len` bytes between physical regions (the conventional
    /// stack's buffer copies).
    pub fn copy(&mut self, src: PhysAddr, dst: PhysAddr, len: u64) {
        let mut tmp = vec![0u8; len as usize];
        self.read(src, &mut tmp);
        self.write(dst, &tmp);
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn write_read_round_trip_across_pages() {
        let mut m = HostMem::new();
        let addr = PhysAddr(CHUNK_SIZE - 100); // straddles a boundary
        let data: Vec<u8> = (0..300).map(|i| (i % 251) as u8).collect();
        m.write(addr, &data);
        let mut out = vec![0u8; 300];
        m.read(addr, &mut out);
        assert_eq!(out, data);
        assert_eq!(m.resident_pages(), 2);
    }

    #[test]
    fn unwritten_memory_reads_zero() {
        let m = HostMem::new();
        let mut out = vec![0xAAu8; 64];
        m.read(PhysAddr(1 << 40), &mut out);
        assert!(out.iter().all(|&b| b == 0));
    }

    #[test]
    fn update_region_in_place() {
        let mut m = HostMem::new();
        let r = PhysRegion::new(PhysAddr(8000), 1000);
        m.fill_region(r, |b| b.fill(7));
        m.update_region(r, |b| {
            for x in b.iter_mut() {
                *x += 1;
            }
        });
        assert!(m.read_region(r).iter().all(|&b| b == 8));
    }

    #[test]
    fn copy_between_regions() {
        let mut m = HostMem::new();
        let src = PhysRegion::new(PhysAddr(4096), 512);
        m.fill_region(src, |b| {
            for (i, x) in b.iter_mut().enumerate() {
                *x = i as u8;
            }
        });
        m.copy(src.addr, PhysAddr(1_000_000), 512);
        let mut out = vec![0u8; 512];
        m.read(PhysAddr(1_000_000), &mut out);
        assert_eq!(out[255], 255);
        assert_eq!(out[0], 0);
    }
}
