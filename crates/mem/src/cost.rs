//! The single calibration table for the reproduction.
//!
//! Every cycle, latency and bandwidth constant used anywhere in the
//! simulation lives here, with a note on where its default comes from
//! (the paper itself, the hardware the paper used, or a standard
//! microarchitecture reference). EXPERIMENTS.md documents the
//! calibration run that validated these against the paper's reported
//! shapes.

/// Cost/latency constants. All cycle counts are for the evaluation
/// server's Xeon E5-2667v3 (3.2 GHz base).
#[derive(Clone, Copy, Debug)]
pub struct CostParams {
    /// Core clock in GHz; converts cycles to simulated time.
    pub cpu_ghz: f64,

    // --- memory system -------------------------------------------------
    /// Effective stall cycles per 64 B line fetched from DRAM. Raw
    /// DRAM latency is ~200 cycles; streaming access patterns overlap
    /// misses (MLP ≈ 4–8), so the effective stall charged per line is
    /// much lower.
    pub dram_stall_cycles_per_line: f64,
    /// Cycles per line for data already in LLC (~45 cycles raw,
    /// heavily overlapped; charged per line touched).
    pub llc_hit_cycles_per_line: f64,

    // --- software operation costs --------------------------------------
    /// One syscall round trip (SYSCALL + kernel entry/exit + spectre
    /// mitigations of the era): ~600 ns on the eval hardware... kept
    /// in cycles.
    pub syscall_cycles: u64,
    /// Full context switch (thread handoff, scheduler, cache warmup
    /// excluded — that is modeled by the LLC).
    pub ctx_switch_cycles: u64,
    /// Pure ALU/SIMD cost of memcpy per byte (memory stalls are added
    /// by the LLC model, not this constant).
    pub memcpy_cycles_per_byte: f64,
    /// AES-128-GCM with AESNI+PCLMUL, data warm in cache: ~1 cycle /
    /// byte (paper §2.2: "as low as 1 CPU cycle/byte").
    pub aes_gcm_cycles_per_byte: f64,

    // --- network stack costs --------------------------------------------
    /// Per-TSO-send descriptor work in the userspace stack (header
    /// template, ring slot, doorbell share).
    pub tcp_tx_op_cycles: u64,
    /// Per-TSO-send cost for the second and later records of the same
    /// connection within one completion sweep: the TCB and socket
    /// state are already hot, the header is templated from the
    /// previous record and the ring doorbell is shared across the
    /// batch, leaving descriptor fill plus a fraction of the header
    /// work.
    pub tcp_tx_batched_op_cycles: u64,
    /// Per-ACK receive processing in the userspace stack.
    pub tcp_rx_ack_cycles: u64,
    /// Kernel-stack per-segment TX cost (mbuf alloc, socket locks,
    /// qdisc/driver path) — charged per wire segment after TSO
    /// amortization.
    pub kstack_tx_segment_cycles: u64,
    /// Kernel-stack per-ACK cost without LRO coalescing.
    pub kstack_rx_ack_cycles: u64,
    /// Multiplicative CPU saving of RSS-assisted LRO on the RX path
    /// (§2.1.3 reports 5–30%; the model uses the mid-band).
    pub lro_rx_discount: f64,

    // --- storage stack costs ---------------------------------------------
    /// libnvme cost to craft + enqueue one NVMe command (diskmap).
    pub nvme_submit_cycles: u64,
    /// libnvme cost to consume one completion (diskmap, polled).
    pub nvme_complete_cycles: u64,
    /// Extra kernel-side cost per I/O for the conventional stack
    /// (VFS, geom, biodone, buffer mapping).
    pub kernel_io_cycles: u64,
    /// aio(4)/kqueue extra per-I/O cost (kevent, aio job management).
    pub aio_io_cycles: u64,
    /// Interrupt handling cost (MSI-X dispatch + driver ISR), charged
    /// when completions are interrupt-driven rather than polled.
    pub interrupt_cycles: u64,
    /// Interrupt delivery latency (device completion → ISR running).
    pub interrupt_latency_ns: u64,

    // --- web server / VFS ------------------------------------------------
    /// nginx userspace work per HTTP request (parse, log, event loop).
    pub nginx_request_cycles: u64,
    /// Atlas userspace work per HTTP request.
    pub atlas_request_cycles: u64,
    /// sendfile setup per call (VFS lookup amortized, sf_buf setup).
    pub sendfile_call_cycles: u64,
    /// Buffer-cache page lookup/insert per 4 KiB page.
    pub bufcache_page_cycles: u64,
    /// VM page reclaim per 4 KiB page when the cache is thrashing
    /// (proactive scan, free-queue relink; §2.1.2).
    pub vm_reclaim_page_cycles: u64,
    /// Lock-contention multiplier applied to buffer-cache/VM work per
    /// additional core beyond the first (fake-NUMA partitioning keeps
    /// this small for Netflix; larger for stock).
    pub vm_contention_per_core: f64,
}

impl Default for CostParams {
    fn default() -> Self {
        CostParams {
            cpu_ghz: 3.2,
            dram_stall_cycles_per_line: 28.0,
            llc_hit_cycles_per_line: 2.0,
            syscall_cycles: 1400,
            ctx_switch_cycles: 4000,
            memcpy_cycles_per_byte: 0.06,
            aes_gcm_cycles_per_byte: 1.0,
            tcp_tx_op_cycles: 900,
            tcp_tx_batched_op_cycles: 300,
            tcp_rx_ack_cycles: 450,
            kstack_tx_segment_cycles: 820,
            kstack_rx_ack_cycles: 3600,
            lro_rx_discount: 0.18,
            nvme_submit_cycles: 450,
            nvme_complete_cycles: 350,
            kernel_io_cycles: 16000,
            aio_io_cycles: 6500,
            interrupt_cycles: 3000,
            interrupt_latency_ns: 6000,
            nginx_request_cycles: 30000,
            atlas_request_cycles: 6000,
            sendfile_call_cycles: 3200,
            bufcache_page_cycles: 1150,
            vm_reclaim_page_cycles: 2400,
            vm_contention_per_core: 0.035,
        }
    }
}

impl CostParams {
    /// Convert cycles to nanoseconds at the configured clock.
    #[must_use]
    pub fn cycles_to_ns(&self, cycles: u64) -> u64 {
        (cycles as f64 / self.cpu_ghz).ceil() as u64
    }

    /// Convert a nanosecond span to cycles.
    #[must_use]
    pub fn ns_to_cycles(&self, ns: u64) -> u64 {
        (ns as f64 * self.cpu_ghz).round() as u64
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn cycle_time_round_trip() {
        let c = CostParams::default();
        // 3200 cycles at 3.2GHz = 1000ns.
        assert_eq!(c.cycles_to_ns(3200), 1000);
        assert_eq!(c.ns_to_cycles(1000), 3200);
    }

    #[test]
    fn defaults_are_sane() {
        let c = CostParams::default();
        assert!(c.aes_gcm_cycles_per_byte >= 0.5 && c.aes_gcm_cycles_per_byte <= 2.0);
        assert!(c.syscall_cycles > 0 && c.ctx_switch_cycles > c.syscall_cycles);
        assert!(c.dram_stall_cycles_per_line > c.llc_hit_cycles_per_line);
    }
}
