//! Last-Level Cache model with a DDIO allocation cap.
//!
//! The LLC is modeled as a fully-associative LRU over
//! [`CHUNK_SIZE`](crate::phys::CHUNK_SIZE) chunks of physical address
//! space. Two populations are tracked:
//!
//! * **DMA-allocated** chunks (inserted by device writes under Intel
//!   DDIO): these may occupy at most `ddio_chunks` — DDIO restricts
//!   allocation to a subset of cache ways. Exceeding the cap evicts
//!   the least-recently-used DMA chunk, which is precisely the
//!   pathology the paper's Fig 14c identifies ("contention for DDIO
//!   portion of LLC evicts DMA'ed data").
//! * **CPU-allocated** chunks: normal loads/stores, limited only by
//!   total capacity. A CPU touch of a DMA chunk reclassifies it —
//!   DDIO caps allocations, not residency of consumed data.
//!
//! LRU order is kept with logical timestamps in two BTreeMap indexes
//! (global order and DMA-only order); at the simulated scales (≲64 k
//! chunks, a few million ops per simulated second) the `O(log n)`
//! operations are negligible and vastly simpler than intrusive lists.

use std::collections::{BTreeMap, HashMap};

/// LLC geometry.
#[derive(Clone, Copy, Debug)]
pub struct LlcConfig {
    /// Total capacity in chunks. The evaluation server's Xeon
    /// E5-2667v3 has a 20 MiB LLC → 5120 four-KiB chunks.
    pub capacity_chunks: u64,
    /// Max chunks resident via DMA (DDIO) allocation. DDIO typically
    /// gets 2 of 20 ways → 10% of capacity.
    pub ddio_chunks: u64,
}

impl LlcConfig {
    /// The paper's server: 20 MiB LLC, 10% DDIO.
    #[must_use]
    pub fn xeon_e5_2667v3() -> Self {
        let capacity_chunks = 20 * 1024 * 1024 / crate::phys::CHUNK_SIZE;
        LlcConfig {
            capacity_chunks,
            ddio_chunks: capacity_chunks / 10,
        }
    }
}

#[derive(Clone, Copy, Debug)]
struct Entry {
    stamp: u64,
    dirty: bool,
    dma: bool,
}

/// Chunks evicted by one insertion.
#[derive(Clone, Copy, Default, Debug)]
pub struct Evictions {
    pub clean_chunks: u64,
    pub dirty_chunks: u64,
}

/// The cache state. Keys are chunk ids (physical page numbers).
pub struct Llc {
    cfg: LlcConfig,
    entries: HashMap<u64, Entry>,
    by_stamp: BTreeMap<u64, u64>,     // stamp -> chunk (all entries)
    dma_by_stamp: BTreeMap<u64, u64>, // stamp -> chunk (dma entries)
    dma_live: u64,
    next_stamp: u64,
    /// Lifetime eviction counters (diagnostics).
    pub evicted_dirty_total: u64,
    pub evicted_clean_total: u64,
}

impl Llc {
    #[must_use]
    pub fn new(cfg: LlcConfig) -> Self {
        assert!(cfg.ddio_chunks <= cfg.capacity_chunks);
        assert!(cfg.capacity_chunks > 0);
        Llc {
            cfg,
            entries: HashMap::new(),
            by_stamp: BTreeMap::new(),
            dma_by_stamp: BTreeMap::new(),
            dma_live: 0,
            next_stamp: 0,
            evicted_dirty_total: 0,
            evicted_clean_total: 0,
        }
    }

    #[must_use]
    pub fn config(&self) -> LlcConfig {
        self.cfg
    }

    /// Number of chunks currently resident.
    #[must_use]
    pub fn resident(&self) -> u64 {
        self.entries.len() as u64
    }

    /// Number of resident chunks still classed as DMA-allocated.
    #[must_use]
    pub fn dma_resident(&self) -> u64 {
        self.dma_live
    }

    /// Is `chunk` resident? Does not update LRU order (pure probe,
    /// used by DMA reads which are not allocating accesses).
    #[must_use]
    pub fn probe(&self, chunk: u64) -> bool {
        self.entries.contains_key(&chunk)
    }

    /// CPU touch: if resident, refresh LRU, optionally mark dirty, and
    /// reclassify a DMA chunk as CPU-owned. Returns hit/miss.
    pub fn touch(&mut self, chunk: u64, dirty: bool) -> bool {
        let stamp = self.bump_stamp();
        match self.entries.get_mut(&chunk) {
            Some(e) => {
                self.by_stamp.remove(&e.stamp);
                if e.dma {
                    self.dma_by_stamp.remove(&e.stamp);
                    self.dma_live -= 1;
                    e.dma = false;
                }
                e.stamp = stamp;
                e.dirty |= dirty;
                self.by_stamp.insert(stamp, chunk);
                true
            }
            None => false,
        }
    }

    /// Allocate `chunk` on behalf of the CPU (after a miss).
    pub fn insert_cpu(&mut self, chunk: u64, dirty: bool) -> Evictions {
        self.insert(chunk, dirty, false)
    }

    /// Allocate `chunk` on behalf of a DMA write (DDIO). The data a
    /// device wrote is by definition newer than DRAM, so DMA chunks
    /// are dirty until consumed or written back.
    pub fn insert_dma(&mut self, chunk: u64) -> Evictions {
        self.insert(chunk, true, true)
    }

    /// Remove `chunk` without writeback (buffer freed / NT store).
    pub fn invalidate(&mut self, chunk: u64) {
        if let Some(e) = self.entries.remove(&chunk) {
            self.by_stamp.remove(&e.stamp);
            if e.dma {
                self.dma_by_stamp.remove(&e.stamp);
                self.dma_live -= 1;
            }
        }
    }

    fn bump_stamp(&mut self) -> u64 {
        let s = self.next_stamp;
        self.next_stamp += 1;
        s
    }

    fn insert(&mut self, chunk: u64, dirty: bool, dma: bool) -> Evictions {
        let mut ev = Evictions::default();
        // Re-insertion of a resident chunk is a touch with
        // reclassification.
        if self.entries.contains_key(&chunk) {
            self.touch(chunk, dirty);
            if dma {
                // A fresh DMA write over a resident chunk re-marks it
                // dirty but keeps it CPU-classified if it was consumed
                // — the common buffer-recycling case. Mark dirty only.
                if let Some(e) = self.entries.get_mut(&chunk) {
                    e.dirty = true;
                }
            }
            return ev;
        }
        let stamp = self.bump_stamp();
        self.entries.insert(chunk, Entry { stamp, dirty, dma });
        self.by_stamp.insert(stamp, chunk);
        if dma {
            self.dma_by_stamp.insert(stamp, chunk);
            self.dma_live += 1;
            // DDIO cap: evict oldest DMA chunk first.
            while self.dma_live > self.cfg.ddio_chunks {
                let (_, victim) = self
                    .dma_by_stamp
                    .iter()
                    .next()
                    .map(|(s, c)| (*s, *c))
                    .expect("dma_live > 0 implies an entry");
                self.evict(victim, &mut ev);
            }
        }
        while self.entries.len() as u64 > self.cfg.capacity_chunks {
            let victim = *self
                .by_stamp
                .values()
                .next()
                .expect("over capacity implies an entry");
            self.evict(victim, &mut ev);
        }
        ev
    }

    fn evict(&mut self, chunk: u64, ev: &mut Evictions) {
        let e = self
            .entries
            .remove(&chunk)
            .expect("evict of non-resident chunk");
        self.by_stamp.remove(&e.stamp);
        if e.dma {
            self.dma_by_stamp.remove(&e.stamp);
            self.dma_live -= 1;
        }
        if e.dirty {
            ev.dirty_chunks += 1;
            self.evicted_dirty_total += 1;
        } else {
            ev.clean_chunks += 1;
            self.evicted_clean_total += 1;
        }
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    fn llc(cap: u64, ddio: u64) -> Llc {
        Llc::new(LlcConfig {
            capacity_chunks: cap,
            ddio_chunks: ddio,
        })
    }

    #[test]
    fn lru_eviction_order() {
        let mut c = llc(3, 3);
        c.insert_cpu(1, false);
        c.insert_cpu(2, false);
        c.insert_cpu(3, false);
        c.touch(1, false); // 2 is now LRU
        let ev = c.insert_cpu(4, false);
        assert_eq!(ev.clean_chunks, 1);
        assert!(!c.probe(2), "LRU victim must be 2");
        assert!(c.probe(1) && c.probe(3) && c.probe(4));
    }

    #[test]
    fn dirty_state_sticky_until_eviction() {
        let mut c = llc(2, 2);
        c.insert_cpu(1, true);
        c.touch(1, false); // clean touch must not clear dirty
        c.insert_cpu(2, false);
        let ev = c.insert_cpu(3, false); // evicts 1
        assert_eq!(ev.dirty_chunks, 1);
    }

    #[test]
    fn ddio_cap_is_enforced_but_capacity_not_exceeded_either() {
        let mut c = llc(8, 2);
        for p in 0..5 {
            c.insert_dma(p);
        }
        assert_eq!(c.dma_resident(), 2);
        assert_eq!(c.resident(), 2);
        assert!(c.probe(3) && c.probe(4));
    }

    #[test]
    fn cpu_touch_reclassifies_dma_chunk() {
        let mut c = llc(8, 2);
        c.insert_dma(1);
        c.insert_dma(2);
        assert_eq!(c.dma_resident(), 2);
        assert!(c.touch(1, true));
        assert_eq!(c.dma_resident(), 1);
        // Two more DMA inserts may evict chunk 2 but not chunk 1.
        c.insert_dma(3);
        c.insert_dma(4);
        assert!(c.probe(1));
        assert!(!c.probe(2));
    }

    #[test]
    fn invalidate_removes_without_counting_eviction() {
        let mut c = llc(4, 4);
        c.insert_cpu(1, true);
        c.invalidate(1);
        assert!(!c.probe(1));
        assert_eq!(c.evicted_dirty_total, 0);
        assert_eq!(c.resident(), 0);
    }

    #[test]
    fn reinsert_resident_is_not_duplicate() {
        let mut c = llc(4, 4);
        c.insert_cpu(1, false);
        c.insert_cpu(1, true);
        assert_eq!(c.resident(), 1);
        c.insert_dma(1);
        assert_eq!(c.resident(), 1);
    }

    #[test]
    fn capacity_pressure_evicts_cpu_lines_too() {
        let mut c = llc(4, 2);
        c.insert_cpu(10, false);
        c.insert_cpu(11, false);
        c.insert_cpu(12, false);
        c.insert_dma(20);
        c.insert_dma(21); // 5 entries total > 4: oldest (10) goes
        assert_eq!(c.resident(), 4);
        assert!(!c.probe(10));
    }

    #[test]
    fn dma_counters_track_reclass_and_eviction() {
        let mut c = llc(16, 4);
        for p in 0..4 {
            c.insert_dma(p);
        }
        c.touch(0, false);
        c.touch(1, false);
        assert_eq!(c.dma_resident(), 2);
        c.invalidate(2);
        assert_eq!(c.dma_resident(), 1);
    }
}
