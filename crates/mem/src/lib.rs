//! # dcn-mem — memory-hierarchy model and cycle cost accounting
//!
//! The paper's central evidence is *memory traffic*: the Netflix stack
//! reads ~2.6× the network rate from DRAM when serving encrypted
//! video, while Atlas holds data in the Last-Level Cache from disk DMA
//! through encryption to NIC DMA and gets close to 1×. This crate is
//! the instrument that measures those figures in the simulation.
//!
//! Every data movement in the system — disk DMA writes, NIC DMA reads,
//! CPU loads/stores, in-place encryption, non-temporal streaming
//! stores — is routed through [`MemSystem`], which maintains:
//!
//! * an LLC model: LRU over 4 KiB chunks of physical address space,
//!   with a **DDIO allocation cap** (Intel DDIO may only allocate into
//!   a fraction of LLC ways; overflow evicts the oldest DMA-allocated
//!   chunk, reproducing the paper's Fig 14c pathology);
//! * DRAM read/write byte counters, time-bucketed and attributed per
//!   agent (disk DMA, NIC DMA, CPU, writeback);
//! * CPU-visible LLC-miss counts (Figs 11f and 13f count "CPU reads
//!   served from DRAM");
//! * a [`CostParams`] table holding every cycle/latency constant in
//!   the reproduction, so calibration happens in exactly one place.

pub mod cost;
pub mod counters;
pub mod cpu;
pub mod hostmem;
pub mod llc;
pub mod phys;

pub use cost::CostParams;
pub use counters::{MemCounters, MemSnapshot, MemTotals};
pub use cpu::{CoreSet, CpuCore};
pub use hostmem::HostMem;
pub use llc::{Llc, LlcConfig};
pub use phys::{PhysAddr, PhysAlloc, PhysRegion, CHUNK_SIZE};

use dcn_simcore::Nanos;

/// Whether payload bytes are materialized or only cost-accounted.
/// Tests and examples run `Full`; large benchmark sweeps may run
/// `Modeled` through the same code paths (see DESIGN.md §2).
#[derive(Clone, Copy, PartialEq, Eq, Debug)]
pub enum Fidelity {
    /// Move real bytes through host memory.
    Full,
    /// Account cache/DRAM/cycle costs only.
    Modeled,
}

/// Who initiated a memory access — used for attribution of DRAM
/// traffic, mirroring how the paper separates DMA traffic from CPU
/// traffic when interpreting its PMC data.
#[derive(Clone, Copy, PartialEq, Eq, Debug)]
pub enum Agent {
    /// NVMe controller DMA (disk → host on reads).
    DiskDma,
    /// NIC DMA (host → wire on TX, wire → host on RX).
    NicDma,
    /// A CPU core (loads, stores, encryption, copies).
    Cpu,
}

/// Result of one access: DRAM traffic it generated and the CPU stall
/// cycles implied (zero for pure DMA, which does not stall a core).
#[derive(Clone, Copy, Default, Debug, PartialEq, Eq)]
pub struct AccessOutcome {
    pub dram_read_bytes: u64,
    pub dram_write_bytes: u64,
    /// 64-byte lines the CPU had to fetch from DRAM.
    pub miss_lines: u64,
    /// CPU stall cycles chargeable to this access.
    pub stall_cycles: u64,
}

impl AccessOutcome {
    fn merge(&mut self, other: AccessOutcome) {
        self.dram_read_bytes += other.dram_read_bytes;
        self.dram_write_bytes += other.dram_write_bytes;
        self.miss_lines += other.miss_lines;
        self.stall_cycles += other.stall_cycles;
    }
}

/// The memory system: LLC model + counters + cost table.
pub struct MemSystem {
    pub llc: Llc,
    pub counters: MemCounters,
    pub costs: CostParams,
    /// Optional stage profiler: DRAM traffic caused by each access is
    /// mirrored into it under the issuing core's current stage. Never
    /// installed unless the server was built with profiling on.
    profiler: Option<dcn_obs::ProfHandle>,
}

impl MemSystem {
    #[must_use]
    pub fn new(llc: LlcConfig, costs: CostParams, bucket: Nanos) -> Self {
        MemSystem {
            llc: Llc::new(llc),
            counters: MemCounters::new(bucket),
            costs,
            profiler: None,
        }
    }

    /// Mirror future DRAM traffic into `prof` (profiling runs only).
    pub fn set_profiler(&mut self, prof: dcn_obs::ProfHandle) {
        self.profiler = Some(prof);
    }

    #[inline]
    fn prof_dram(&self, out: &AccessOutcome) {
        if let Some(p) = &self.profiler {
            if out.dram_read_bytes | out.dram_write_bytes != 0 {
                p.borrow_mut()
                    .on_dram(out.dram_read_bytes, out.dram_write_bytes);
            }
        }
    }

    /// Device writes `region` into host memory (e.g. NVMe read
    /// completion data, NIC RX). With DDIO this allocates into the
    /// LLC's DDIO portion; the data itself causes **no** DRAM write
    /// unless/until it is evicted dirty.
    pub fn dma_write(&mut self, now: Nanos, agent: Agent, region: PhysRegion) -> AccessOutcome {
        let mut out = AccessOutcome::default();
        for chunk in region.chunks() {
            let ev = self.llc.insert_dma(chunk);
            out.merge(self.account_evictions(now, ev));
        }
        self.counters.record_dma_write(now, agent, region.len);
        self.prof_dram(&out);
        out
    }

    /// Device reads `region` from host memory (e.g. NIC TX DMA, NVMe
    /// write command). Hits are served from the LLC (DDIO read);
    /// misses read DRAM but do **not** allocate.
    pub fn dma_read(&mut self, now: Nanos, agent: Agent, region: PhysRegion) -> AccessOutcome {
        let mut out = AccessOutcome::default();
        let mut hit_bytes = 0u64;
        for chunk in region.chunks() {
            let len = region.len_within(chunk);
            if self.llc.probe(chunk) {
                hit_bytes += len;
            } else {
                out.dram_read_bytes += len;
            }
        }
        self.counters
            .record_dma_read(now, agent, out.dram_read_bytes, hit_bytes);
        if let Some(p) = &self.profiler {
            let mut p = p.borrow_mut();
            p.on_dma_read(out.dram_read_bytes, hit_bytes);
            if out.dram_read_bytes != 0 {
                p.on_dram(out.dram_read_bytes, 0);
            }
        }
        out
    }

    /// Non-mutating residency query: is every cache line of `region`
    /// currently LLC-resident? Touches no LRU state and no counters,
    /// so observers (the dcn-obs tracer) can ask without perturbing
    /// the simulation — tracing on or off yields identical runs.
    #[must_use]
    pub fn probe_region(&self, region: PhysRegion) -> bool {
        region.chunks().all(|chunk| self.llc.probe(chunk))
    }

    /// CPU load of `region`. Misses read DRAM, allocate clean lines,
    /// and stall the core.
    pub fn cpu_read(&mut self, now: Nanos, region: PhysRegion) -> AccessOutcome {
        self.cpu_access(now, region, /* dirty = */ false)
    }

    /// CPU store to `region` (normal, write-allocate): a miss performs
    /// a read-for-ownership from DRAM and the line becomes dirty.
    pub fn cpu_write(&mut self, now: Nanos, region: PhysRegion) -> AccessOutcome {
        self.cpu_access(now, region, /* dirty = */ true)
    }

    /// CPU read-modify-write of `region` — the in-place encryption
    /// path. One pass: misses cost one DRAM read; lines end dirty.
    pub fn cpu_rmw(&mut self, now: Nanos, region: PhysRegion) -> AccessOutcome {
        self.cpu_access(now, region, /* dirty = */ true)
    }

    /// CPU load that does not warm the cache: the line is consumed
    /// once and immediately dead (header inspection, mbuf walks, LRO
    /// merge checks). Misses read DRAM but do **not** allocate, and
    /// hits do not refresh LRU — so these touches never keep payload
    /// alive for a later DMA read.
    pub fn cpu_read_once(&mut self, now: Nanos, region: PhysRegion) -> AccessOutcome {
        let mut out = AccessOutcome::default();
        let mut hit_bytes = 0u64;
        for chunk in region.chunks() {
            let len = region.len_within(chunk);
            if self.llc.probe(chunk) {
                hit_bytes += len;
            } else {
                out.dram_read_bytes += len;
                out.miss_lines += len.div_ceil(64);
            }
        }
        out.stall_cycles = (out.miss_lines as f64 * self.costs.dram_stall_cycles_per_line
            + (hit_bytes.div_ceil(64)) as f64 * self.costs.llc_hit_cycles_per_line)
            as u64;
        self.counters
            .record_cpu_access(now, out.dram_read_bytes, hit_bytes, out.miss_lines);
        self.prof_dram(&out);
        out
    }

    /// Non-temporal (streaming) store: bypasses the LLC entirely,
    /// writing straight to DRAM and invalidating any cached copy.
    /// This is the ISA-L/Netflix `kTLS` output path (§5 discusses why
    /// it can be a pessimization).
    pub fn cpu_write_nt(&mut self, now: Nanos, region: PhysRegion) -> AccessOutcome {
        for chunk in region.chunks() {
            self.llc.invalidate(chunk);
        }
        self.counters.record_dram_write(now, Agent::Cpu, region.len);
        let out = AccessOutcome {
            dram_write_bytes: region.len,
            ..AccessOutcome::default()
        };
        self.prof_dram(&out);
        out
    }

    /// Drop `region` from the cache without writeback — the buffer was
    /// freed and its contents are dead (diskmap buffer recycling).
    pub fn discard(&mut self, region: PhysRegion) {
        for chunk in region.chunks() {
            self.llc.invalidate(chunk);
        }
    }

    /// Model an asynchronous-handoff flush: between a producer stage
    /// and a deferred consumer stage (e.g. async sendfile staging →
    /// kTLS worker threads, §2.3/Fig 4), cached data ages out of the
    /// LLC. Dirty resident chunks are written back to DRAM and the
    /// region leaves the cache, so the consumer's reads really hit
    /// DRAM.
    pub fn flush_delayed(&mut self, now: Nanos, region: PhysRegion) -> AccessOutcome {
        let mut out = AccessOutcome::default();
        for chunk in region.chunks() {
            if self.llc.probe(chunk) {
                // DMA-filled and CPU-dirtied chunks write back.
                out.dram_write_bytes += CHUNK_SIZE;
                self.llc.invalidate(chunk);
            }
        }
        if out.dram_write_bytes > 0 {
            self.counters.record_writeback(now, out.dram_write_bytes);
        }
        self.prof_dram(&out);
        out
    }

    fn cpu_access(&mut self, now: Nanos, region: PhysRegion, dirty: bool) -> AccessOutcome {
        let mut out = AccessOutcome::default();
        let mut hit_bytes = 0u64;
        for chunk in region.chunks() {
            let len = region.len_within(chunk);
            if self.llc.touch(chunk, dirty) {
                hit_bytes += len;
            } else {
                // Miss: fetch from DRAM, allocate (possibly evicting).
                out.dram_read_bytes += len;
                out.miss_lines += len.div_ceil(64);
                let ev = self.llc.insert_cpu(chunk, dirty);
                out.merge(self.account_evictions(now, ev));
            }
        }
        out.stall_cycles = (out.miss_lines as f64 * self.costs.dram_stall_cycles_per_line
            + (hit_bytes.div_ceil(64)) as f64 * self.costs.llc_hit_cycles_per_line)
            as u64;
        self.counters
            .record_cpu_access(now, out.dram_read_bytes, hit_bytes, out.miss_lines);
        self.prof_dram(&out);
        out
    }

    fn account_evictions(&mut self, now: Nanos, evicted: llc::Evictions) -> AccessOutcome {
        let bytes = evicted.dirty_chunks * CHUNK_SIZE;
        if bytes > 0 {
            self.counters.record_writeback(now, bytes);
        }
        AccessOutcome {
            dram_write_bytes: bytes,
            ..AccessOutcome::default()
        }
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    fn small_mem() -> MemSystem {
        // 16-chunk LLC (64 KiB), DDIO capped at 4 chunks.
        MemSystem::new(
            LlcConfig {
                capacity_chunks: 16,
                ddio_chunks: 4,
            },
            CostParams::default(),
            Nanos::from_millis(1),
        )
    }

    fn region(page: u64, len: u64) -> PhysRegion {
        PhysRegion {
            addr: PhysAddr(page * CHUNK_SIZE),
            len,
        }
    }

    #[test]
    fn dma_write_then_dma_read_stays_in_llc() {
        let mut m = small_mem();
        let r = region(0, 2 * CHUNK_SIZE);
        let t = Nanos::ZERO;
        let w = m.dma_write(t, Agent::DiskDma, r);
        assert_eq!(w.dram_write_bytes, 0);
        let rd = m.dma_read(t, Agent::NicDma, r);
        // Ideal Atlas path (paper Fig 5): zero DRAM traffic.
        assert_eq!(rd.dram_read_bytes, 0);
    }

    #[test]
    fn ddio_cap_evicts_oldest_dma_chunk() {
        let mut m = small_mem();
        let t = Nanos::ZERO;
        // Fill DDIO portion (4 chunks), then one more.
        for p in 0..5 {
            m.dma_write(t, Agent::DiskDma, region(p, CHUNK_SIZE));
        }
        // Chunk 0 was evicted dirty (DMA data is dirty by definition).
        let rd = m.dma_read(t, Agent::NicDma, region(0, CHUNK_SIZE));
        assert_eq!(
            rd.dram_read_bytes, CHUNK_SIZE,
            "oldest DDIO chunk must be gone"
        );
        // Chunk 4 is still cached.
        let rd = m.dma_read(t, Agent::NicDma, region(4, CHUNK_SIZE));
        assert_eq!(rd.dram_read_bytes, 0);
    }

    #[test]
    fn cpu_read_promotes_out_of_ddio_budget() {
        // Once the CPU touches a DMA'd chunk (e.g. encrypts it), it no
        // longer counts against the DDIO cap — DDIO limits allocation,
        // not residency of CPU-touched data.
        let mut m = small_mem();
        let t = Nanos::ZERO;
        for p in 0..4 {
            m.dma_write(t, Agent::DiskDma, region(p, CHUNK_SIZE));
        }
        m.cpu_rmw(t, region(0, CHUNK_SIZE));
        // Four more DMA chunks: evictions hit 1,2,3 (DMA-class) and
        // then one of the new ones, but never chunk 0.
        for p in 4..8 {
            m.dma_write(t, Agent::DiskDma, region(p, CHUNK_SIZE));
        }
        let rd = m.dma_read(t, Agent::NicDma, region(0, CHUNK_SIZE));
        assert_eq!(
            rd.dram_read_bytes, 0,
            "CPU-touched chunk was wrongly evicted"
        );
    }

    #[test]
    fn cpu_miss_costs_read_and_stall() {
        let mut m = small_mem();
        let t = Nanos::ZERO;
        let out = m.cpu_read(t, region(7, CHUNK_SIZE));
        assert_eq!(out.dram_read_bytes, CHUNK_SIZE);
        assert_eq!(out.miss_lines, CHUNK_SIZE / 64);
        assert!(out.stall_cycles > 0);
        // Second read hits.
        let out2 = m.cpu_read(t, region(7, CHUNK_SIZE));
        assert_eq!(out2.dram_read_bytes, 0);
        assert_eq!(out2.miss_lines, 0);
        assert!(out2.stall_cycles < out.stall_cycles);
    }

    #[test]
    fn dirty_eviction_writes_back() {
        let mut m = small_mem();
        let t = Nanos::ZERO;
        // Dirty one chunk via CPU write, then stream 16 more chunks of
        // CPU reads to force it out of the 16-chunk LLC.
        m.cpu_write(t, region(100, CHUNK_SIZE));
        let mut wb = 0;
        for p in 0..16 {
            wb += m.cpu_read(t, region(p, CHUNK_SIZE)).dram_write_bytes;
        }
        assert_eq!(
            wb, CHUNK_SIZE,
            "exactly the dirty chunk must be written back"
        );
    }

    #[test]
    fn nt_store_bypasses_llc() {
        let mut m = small_mem();
        let t = Nanos::ZERO;
        let r = region(3, CHUNK_SIZE);
        let out = m.cpu_write_nt(t, r);
        assert_eq!(out.dram_write_bytes, CHUNK_SIZE);
        // The data is NOT in the LLC afterwards.
        let rd = m.dma_read(t, Agent::NicDma, r);
        assert_eq!(rd.dram_read_bytes, CHUNK_SIZE);
    }

    #[test]
    fn discard_avoids_writeback() {
        let mut m = small_mem();
        let t = Nanos::ZERO;
        m.cpu_write(t, region(5, CHUNK_SIZE));
        m.discard(region(5, CHUNK_SIZE));
        let mut wb = 0;
        for p in 10..26 {
            wb += m.cpu_read(t, region(p, CHUNK_SIZE)).dram_write_bytes;
        }
        assert_eq!(wb, 0, "discarded chunk must not be written back");
    }

    #[test]
    fn counters_accumulate() {
        let mut m = small_mem();
        let t = Nanos::from_micros(500);
        m.dma_write(t, Agent::DiskDma, region(0, CHUNK_SIZE));
        m.cpu_rmw(t, region(0, CHUNK_SIZE));
        m.dma_read(t, Agent::NicDma, region(0, CHUNK_SIZE));
        let snap = m.counters.snapshot(Nanos::ZERO, Nanos::from_millis(1));
        assert_eq!(snap.dram_read_bytes_per_sec, 0.0, "all hits: no DRAM reads");
        assert!(snap.llc_miss_lines_per_sec == 0.0);
    }
}
