//! CPU core model: busy-cycle accounting and utilization.
//!
//! Each simulated core is a serial resource: work submitted at time
//! `t` begins at `max(t, busy_until)` and runs for `cycles / freq`.
//! Utilization over a measurement window is busy-time ÷ wall-time,
//! reported per-core and summed the way the paper's CPU plots do
//! (800% = eight saturated cores).
//!
//! A polling stack (Atlas) is special-cased: its cores always report
//! 100% (the paper notes Atlas "CPU utilization measured remains
//! constant at ~400%" because it spins), while *useful* cycles are
//! still tracked separately so saturation can be detected.

use crate::cost::CostParams;
use dcn_obs::ProfHandle;
use dcn_simcore::{Nanos, TimeBuckets};

/// One simulated core.
pub struct CpuCore {
    ghz: f64,
    busy_until: Nanos,
    busy: TimeBuckets,
    pub total_busy: Nanos,
}

impl CpuCore {
    #[must_use]
    pub fn new(ghz: f64, bucket: Nanos) -> Self {
        CpuCore {
            ghz,
            busy_until: Nanos::ZERO,
            busy: TimeBuckets::new(bucket),
            total_busy: Nanos::ZERO,
        }
    }

    /// Earliest instant new work submitted now could start.
    #[must_use]
    pub fn free_at(&self) -> Nanos {
        self.busy_until
    }

    /// Is the core already busy at `now`?
    #[must_use]
    pub fn is_busy(&self, now: Nanos) -> bool {
        self.busy_until > now
    }

    /// Run `cycles` of work requested at `now`; returns the completion
    /// time (which is when dependent events should fire).
    pub fn run(&mut self, now: Nanos, cycles: u64) -> Nanos {
        let dur = Nanos::from_nanos((cycles as f64 / self.ghz).ceil() as u64);
        let start = self.busy_until.max(now);
        let end = start + dur;
        self.busy.add_span(start, end, 1.0);
        self.total_busy += dur;
        self.busy_until = end;
        end
    }

    /// Utilization (0..1) over `[warmup, end)`.
    #[must_use]
    pub fn utilization(&self, warmup: Nanos, end: Nanos) -> f64 {
        self.busy.rate_per_sec(warmup, end)
    }

    /// Block the core until `until` without accruing busy time — a
    /// thread sleeping on synchronous I/O (stock sendfile, §2.1.1)
    /// serializes the event loop but does not burn CPU.
    pub fn stall_until(&mut self, until: Nanos) {
        self.busy_until = self.busy_until.max(until);
    }
}

/// A set of cores belonging to one stack instance, with round-robin /
/// least-loaded placement helpers.
pub struct CoreSet {
    cores: Vec<CpuCore>,
    /// Polling stacks report 100% per core regardless of useful work.
    polling: bool,
    /// Optional stage profiler: every cycle charge is mirrored into it
    /// under the core's current stage. Never installed unless the
    /// server was built with profiling on, so the common path pays one
    /// `None` check.
    profiler: Option<ProfHandle>,
}

impl CoreSet {
    #[must_use]
    pub fn new(n: usize, costs: &CostParams, bucket: Nanos, polling: bool) -> Self {
        CoreSet {
            cores: (0..n)
                .map(|_| CpuCore::new(costs.cpu_ghz, bucket))
                .collect(),
            polling,
            profiler: None,
        }
    }

    /// Mirror future cycle charges into `prof` (profiling runs only).
    pub fn set_profiler(&mut self, prof: ProfHandle) {
        self.profiler = Some(prof);
    }

    #[must_use]
    pub fn len(&self) -> usize {
        self.cores.len()
    }
    #[must_use]
    pub fn is_empty(&self) -> bool {
        self.cores.is_empty()
    }

    pub fn core(&mut self, idx: usize) -> &mut CpuCore {
        &mut self.cores[idx]
    }

    /// Index of the core that can start work soonest.
    #[must_use]
    pub fn least_loaded(&self) -> usize {
        self.cores
            .iter()
            .enumerate()
            .min_by_key(|(_, c)| c.free_at())
            .map(|(i, _)| i)
            .expect("CoreSet is never empty")
    }

    /// Run `cycles` on a specific core.
    pub fn run_on(&mut self, idx: usize, now: Nanos, cycles: u64) -> Nanos {
        if let Some(p) = &self.profiler {
            p.borrow_mut().on_cycles(idx, cycles);
        }
        self.cores[idx].run(now, cycles)
    }

    /// Block a core until `until` (synchronous I/O wait).
    pub fn stall_on(&mut self, idx: usize, until: Nanos) {
        self.cores[idx].stall_until(until);
    }

    /// Total utilization in percent (the paper's 0–800% axis).
    #[must_use]
    pub fn utilization_pct(&self, warmup: Nanos, end: Nanos) -> f64 {
        if self.polling {
            return self.cores.len() as f64 * 100.0;
        }
        self.cores
            .iter()
            .map(|c| c.utilization(warmup, end) * 100.0)
            .sum()
    }

    /// Useful-work utilization in percent, ignoring the polling
    /// convention — used to detect actual saturation of Atlas cores.
    #[must_use]
    pub fn useful_pct(&self, warmup: Nanos, end: Nanos) -> f64 {
        self.cores
            .iter()
            .map(|c| c.utilization(warmup, end) * 100.0)
            .sum()
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn serial_execution_queues_work() {
        let mut c = CpuCore::new(1.0, Nanos::from_millis(1)); // 1 GHz: 1 cycle = 1 ns
        let t1 = c.run(Nanos::ZERO, 1000);
        assert_eq!(t1, Nanos::from_nanos(1000));
        // Submitted while busy: starts after.
        let t2 = c.run(Nanos::from_nanos(500), 1000);
        assert_eq!(t2, Nanos::from_nanos(2000));
        // Submitted after idle gap: starts at submission.
        let t3 = c.run(Nanos::from_nanos(5000), 1000);
        assert_eq!(t3, Nanos::from_nanos(6000));
    }

    #[test]
    fn utilization_measures_busy_fraction() {
        let mut c = CpuCore::new(1.0, Nanos::from_millis(1));
        // Busy 2ms within a 10ms window.
        c.run(Nanos::ZERO, 2_000_000);
        let u = c.utilization(Nanos::ZERO, Nanos::from_millis(10));
        assert!((u - 0.2).abs() < 1e-6, "u={u}");
    }

    #[test]
    fn coreset_least_loaded_balances() {
        let costs = CostParams::default();
        let mut cs = CoreSet::new(2, &costs, Nanos::from_millis(1), false);
        let a = cs.least_loaded();
        cs.run_on(a, Nanos::ZERO, 32_000);
        let b = cs.least_loaded();
        assert_ne!(a, b);
    }

    #[test]
    fn polling_coreset_reports_full_utilization() {
        let costs = CostParams::default();
        let cs = CoreSet::new(4, &costs, Nanos::from_millis(1), true);
        assert_eq!(
            cs.utilization_pct(Nanos::ZERO, Nanos::from_millis(10)),
            400.0
        );
        assert_eq!(cs.useful_pct(Nanos::ZERO, Nanos::from_millis(10)), 0.0);
    }
}
