//! Simulated physical address space.
//!
//! All DMA-visible memory (diskmap buffers, NIC rings, buffer-cache
//! pages, socket buffers) is carved out of a single flat physical
//! address space by [`PhysAlloc`]. The LLC model tracks residency at
//! [`CHUNK_SIZE`] granularity, so the allocator hands out chunk-aligned
//! regions: distinct buffers never share a chunk, which keeps the
//! cache model honest about working-set size.

/// Cache-model granularity. 4 KiB is coarse enough to track hundreds
/// of MB of working set cheaply and fine enough to resolve per-buffer
/// residency (diskmap buffers are 4–128 KiB).
pub const CHUNK_SIZE: u64 = 4096;

/// A simulated physical address.
#[derive(Clone, Copy, PartialEq, Eq, PartialOrd, Ord, Hash, Debug, Default)]
pub struct PhysAddr(pub u64);

/// A contiguous physical byte range.
#[derive(Clone, Copy, PartialEq, Eq, Debug, Default)]
pub struct PhysRegion {
    pub addr: PhysAddr,
    pub len: u64,
}

impl PhysRegion {
    #[must_use]
    pub fn new(addr: PhysAddr, len: u64) -> Self {
        PhysRegion { addr, len }
    }

    #[must_use]
    pub fn end(&self) -> u64 {
        self.addr.0 + self.len
    }

    /// Sub-range `[off, off+len)` of this region. Panics when out of
    /// bounds — slicing past a DMA buffer is a driver bug.
    #[must_use]
    pub fn slice(&self, off: u64, len: u64) -> PhysRegion {
        assert!(
            off + len <= self.len,
            "slice {off}+{len} out of region len {}",
            self.len
        );
        PhysRegion {
            addr: PhysAddr(self.addr.0 + off),
            len,
        }
    }

    /// Chunk ids (page numbers) this region overlaps.
    pub fn chunks(&self) -> impl Iterator<Item = u64> {
        let first = self.addr.0 / CHUNK_SIZE;
        let last = if self.len == 0 {
            first
        } else {
            (self.end() - 1) / CHUNK_SIZE + 1
        };
        first..last
    }

    /// Bytes of this region that fall within `chunk`.
    #[must_use]
    pub fn len_within(&self, chunk: u64) -> u64 {
        let cs = chunk * CHUNK_SIZE;
        let ce = cs + CHUNK_SIZE;
        let s = self.addr.0.max(cs);
        let e = self.end().min(ce);
        e.saturating_sub(s)
    }

    #[must_use]
    pub fn is_empty(&self) -> bool {
        self.len == 0
    }
}

/// Bump allocator over the simulated physical address space.
///
/// Regions are never returned to the allocator: simulation components
/// (buffer pools, ring buffers, the buffer cache) allocate their
/// arenas once at startup and recycle internally — exactly how the
/// paper's diskmap pre-allocates all non-pageable memory at attach
/// time (§3.1.2).
#[derive(Debug, Default)]
pub struct PhysAlloc {
    next: u64,
}

impl PhysAlloc {
    #[must_use]
    pub fn new() -> Self {
        PhysAlloc { next: CHUNK_SIZE } // keep address 0 unused
    }

    /// Allocate a chunk-aligned region of at least `len` bytes.
    pub fn alloc(&mut self, len: u64) -> PhysRegion {
        let addr = PhysAddr(self.next);
        let span = len.div_ceil(CHUNK_SIZE) * CHUNK_SIZE;
        self.next += span.max(CHUNK_SIZE);
        PhysRegion { addr, len }
    }

    /// Total simulated physical memory handed out.
    #[must_use]
    pub fn allocated(&self) -> u64 {
        self.next - CHUNK_SIZE
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn alloc_is_chunk_aligned_and_disjoint() {
        let mut a = PhysAlloc::new();
        let r1 = a.alloc(100);
        let r2 = a.alloc(5000);
        let r3 = a.alloc(4096);
        assert_eq!(r1.addr.0 % CHUNK_SIZE, 0);
        assert_eq!(r2.addr.0 % CHUNK_SIZE, 0);
        assert!(r1.end() <= r2.addr.0);
        assert!(r2.addr.0 + 8192 <= r3.addr.0 + 8192); // r2 spans 2 chunks
        let c1: Vec<_> = r1.chunks().collect();
        let c2: Vec<_> = r2.chunks().collect();
        assert!(
            c1.iter().all(|c| !c2.contains(c)),
            "chunks must not be shared"
        );
    }

    #[test]
    fn chunks_iteration() {
        let r = PhysRegion {
            addr: PhysAddr(4096),
            len: 8192,
        };
        assert_eq!(r.chunks().collect::<Vec<_>>(), vec![1, 2]);
        let r = PhysRegion {
            addr: PhysAddr(4096),
            len: 1,
        };
        assert_eq!(r.chunks().collect::<Vec<_>>(), vec![1]);
        let r = PhysRegion {
            addr: PhysAddr(4000),
            len: 200,
        };
        assert_eq!(r.chunks().collect::<Vec<_>>(), vec![0, 1]);
    }

    #[test]
    fn len_within_partial_chunks() {
        let r = PhysRegion {
            addr: PhysAddr(4000),
            len: 200,
        };
        assert_eq!(r.len_within(0), 96);
        assert_eq!(r.len_within(1), 104);
        assert_eq!(r.len_within(2), 0);
        assert_eq!(r.chunks().map(|c| r.len_within(c)).sum::<u64>(), r.len);
    }

    #[test]
    fn slice_within_bounds() {
        let r = PhysRegion {
            addr: PhysAddr(8192),
            len: 4096,
        };
        let s = r.slice(100, 200);
        assert_eq!(s.addr.0, 8292);
        assert_eq!(s.len, 200);
    }

    #[test]
    #[should_panic(expected = "out of region")]
    fn slice_out_of_bounds_panics() {
        let r = PhysRegion {
            addr: PhysAddr(0),
            len: 100,
        };
        let _ = r.slice(50, 100);
    }

    #[test]
    fn empty_region_has_no_chunks() {
        let r = PhysRegion {
            addr: PhysAddr(4096),
            len: 0,
        };
        assert_eq!(r.chunks().count(), 0);
        assert!(r.is_empty());
    }
}
