//! Time-bucketed DRAM traffic and LLC-miss counters.
//!
//! These are the simulation's equivalent of the paper's uncore PMC
//! measurements: memory READ/WRITE throughput (Figs 3, 11c/d, 13c/d)
//! and the LLC-miss rate ("CPU reads served from DRAM", Figs 11f/13f).
//!
//! All state is private; consumers read through [`MemCounters::totals`]
//! (lifetime, per-agent) or [`MemCounters::snapshot`] (steady-state
//! rates) so figure code and the dcn-obs registry share one surface.

use crate::Agent;
use dcn_simcore::{Nanos, TimeBuckets};

/// Aggregated counters; all byte quantities are DRAM traffic, not
/// cache traffic.
pub struct MemCounters {
    dram_rd: TimeBuckets,
    dram_wr: TimeBuckets,
    dram_rd_cpu: TimeBuckets,
    dram_rd_nic: TimeBuckets,
    miss_lines: TimeBuckets,
    totals: MemTotals,
    /// Gauge handles for [`Self::publish_metrics`], registered on the
    /// first publish so repeated sampling does no string lookups.
    gauge_ids: Option<[dcn_obs::GaugeId; 8]>,
}

/// Lifetime totals, broken down by the agent that generated the
/// traffic. Returned by value from [`MemCounters::totals`]; the
/// fields stay private to the mem crate so nothing can poke them.
#[derive(Clone, Copy, Debug, Default, PartialEq, Eq)]
pub struct MemTotals {
    /// All bytes read from DRAM (CPU misses + device DMA misses).
    pub dram_read_bytes: u64,
    /// All bytes written to DRAM (writebacks + non-temporal stores).
    pub dram_write_bytes: u64,
    /// DRAM reads caused by CPU loads that missed the LLC.
    pub dram_read_cpu_bytes: u64,
    /// DRAM reads caused by NIC TX DMA that missed the LLC.
    pub dram_read_nic_bytes: u64,
    /// DRAM reads caused by disk-controller DMA (rare: DDIO probes).
    pub dram_read_disk_bytes: u64,
    /// Total device-DMA write volume (lands in LLC under DDIO; DRAM
    /// traffic happens only at eviction).
    pub dma_write_bytes: u64,
    /// Device-DMA read bytes served from the LLC (no DRAM touch).
    pub dma_read_hit_bytes: u64,
    /// CPU cache lines missed in the LLC.
    pub miss_lines: u64,
}

impl MemCounters {
    #[must_use]
    pub fn new(bucket: Nanos) -> Self {
        MemCounters {
            dram_rd: TimeBuckets::new(bucket),
            dram_wr: TimeBuckets::new(bucket),
            dram_rd_cpu: TimeBuckets::new(bucket),
            dram_rd_nic: TimeBuckets::new(bucket),
            miss_lines: TimeBuckets::new(bucket),
            totals: MemTotals::default(),
            gauge_ids: None,
        }
    }

    pub(crate) fn record_dma_write(&mut self, _now: Nanos, _agent: Agent, bytes: u64) {
        // DDIO: device writes land in LLC; DRAM traffic happens only at
        // eviction (record_writeback). We still track the DMA volume.
        self.totals.dma_write_bytes += bytes;
    }

    pub(crate) fn record_dma_read(
        &mut self,
        now: Nanos,
        agent: Agent,
        dram_bytes: u64,
        hit_bytes: u64,
    ) {
        if dram_bytes > 0 {
            self.dram_rd.add(now, dram_bytes as f64);
            self.totals.dram_read_bytes += dram_bytes;
            match agent {
                Agent::NicDma => {
                    self.dram_rd_nic.add(now, dram_bytes as f64);
                    self.totals.dram_read_nic_bytes += dram_bytes;
                }
                Agent::DiskDma => self.totals.dram_read_disk_bytes += dram_bytes,
                Agent::Cpu => {}
            }
        }
        self.totals.dma_read_hit_bytes += hit_bytes;
    }

    pub(crate) fn record_cpu_access(
        &mut self,
        now: Nanos,
        dram_bytes: u64,
        _hit_bytes: u64,
        miss_lines: u64,
    ) {
        if dram_bytes > 0 {
            self.dram_rd.add(now, dram_bytes as f64);
            self.dram_rd_cpu.add(now, dram_bytes as f64);
            self.totals.dram_read_bytes += dram_bytes;
            self.totals.dram_read_cpu_bytes += dram_bytes;
        }
        if miss_lines > 0 {
            self.miss_lines.add(now, miss_lines as f64);
            self.totals.miss_lines += miss_lines;
        }
    }

    pub(crate) fn record_writeback(&mut self, now: Nanos, bytes: u64) {
        self.dram_wr.add(now, bytes as f64);
        self.totals.dram_write_bytes += bytes;
    }

    pub(crate) fn record_dram_write(&mut self, now: Nanos, _agent: Agent, bytes: u64) {
        self.dram_wr.add(now, bytes as f64);
        self.totals.dram_write_bytes += bytes;
    }

    /// Lifetime totals, per agent. The public read API.
    #[must_use]
    pub fn totals(&self) -> MemTotals {
        self.totals
    }

    /// Publish the lifetime totals into a dcn-obs registry under
    /// `mem.*` gauges — the single surface Figs 3/11c–f/13c–f and
    /// the CSV export read from. The gauge handles are resolved once
    /// on the first call; timed metric sampling (every few ms of
    /// virtual time) then pays only `Vec` stores, no name scans.
    pub fn publish_metrics(&mut self, reg: &mut dcn_obs::Registry) {
        let ids = *self.gauge_ids.get_or_insert_with(|| {
            [
                reg.gauge("mem.dram_read_bytes"),
                reg.gauge("mem.dram_write_bytes"),
                reg.gauge("mem.dram_read_cpu_bytes"),
                reg.gauge("mem.dram_read_nic_bytes"),
                reg.gauge("mem.dram_read_disk_bytes"),
                reg.gauge("mem.dma_write_bytes"),
                reg.gauge("mem.dma_read_hit_bytes"),
                reg.gauge("mem.llc_miss_lines"),
            ]
        });
        let t = self.totals;
        for (g, v) in ids.into_iter().zip([
            t.dram_read_bytes,
            t.dram_write_bytes,
            t.dram_read_cpu_bytes,
            t.dram_read_nic_bytes,
            t.dram_read_disk_bytes,
            t.dma_write_bytes,
            t.dma_read_hit_bytes,
            t.miss_lines,
        ]) {
            reg.set(g, v as f64);
        }
    }

    /// Steady-state rates over `[warmup, end)`.
    #[must_use]
    pub fn snapshot(&self, warmup: Nanos, end: Nanos) -> MemSnapshot {
        MemSnapshot {
            dram_read_bytes_per_sec: self.dram_rd.rate_per_sec(warmup, end),
            dram_write_bytes_per_sec: self.dram_wr.rate_per_sec(warmup, end),
            dram_read_cpu_bytes_per_sec: self.dram_rd_cpu.rate_per_sec(warmup, end),
            dram_read_nic_bytes_per_sec: self.dram_rd_nic.rate_per_sec(warmup, end),
            llc_miss_lines_per_sec: self.miss_lines.rate_per_sec(warmup, end),
        }
    }
}

/// Steady-state memory rates, in the units the paper plots.
#[derive(Clone, Copy, Debug, Default)]
pub struct MemSnapshot {
    pub dram_read_bytes_per_sec: f64,
    pub dram_write_bytes_per_sec: f64,
    pub dram_read_cpu_bytes_per_sec: f64,
    pub dram_read_nic_bytes_per_sec: f64,
    pub llc_miss_lines_per_sec: f64,
}

impl MemSnapshot {
    /// Memory read throughput in Gb/s (Figs 11c/13c y-axis).
    #[must_use]
    pub fn read_gbps(&self) -> f64 {
        self.dram_read_bytes_per_sec * 8.0 / 1e9
    }
    /// Memory write throughput in Gb/s (Figs 11d/13d y-axis).
    #[must_use]
    pub fn write_gbps(&self) -> f64 {
        self.dram_write_bytes_per_sec * 8.0 / 1e9
    }
    /// LLC-miss reads per second ×10⁸ (Figs 11f/13f y-axis).
    #[must_use]
    pub fn miss_reads_e8(&self) -> f64 {
        self.llc_miss_lines_per_sec / 1e8
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn rates_read_out_in_gbps() {
        let mut c = MemCounters::new(Nanos::from_millis(1));
        // 1.25 GB over 100ms fully inside the window = 100 Gb/s.
        let total: u64 = 1_250_000_000;
        let chunks = 1000u64;
        for i in 0..chunks {
            c.record_cpu_access(
                Nanos::from_micros(i * 100),
                total / chunks,
                0,
                (total / chunks) / 64,
            );
        }
        let snap = c.snapshot(Nanos::ZERO, Nanos::from_millis(100));
        assert!(
            (snap.read_gbps() - 100.0).abs() < 1.0,
            "{}",
            snap.read_gbps()
        );
        assert!(snap.llc_miss_lines_per_sec > 0.0);
        assert_eq!(c.totals().dram_read_bytes, total);
        assert_eq!(c.totals().dram_read_cpu_bytes, total);
        assert_eq!(c.totals().miss_lines, chunks * (total / chunks / 64));
    }

    #[test]
    fn writebacks_count_as_dram_writes() {
        let mut c = MemCounters::new(Nanos::from_millis(1));
        c.record_writeback(Nanos::from_micros(10), 4096);
        assert_eq!(c.totals().dram_write_bytes, 4096);
    }

    #[test]
    fn per_agent_dma_read_attribution() {
        let mut c = MemCounters::new(Nanos::from_millis(1));
        c.record_dma_read(Nanos::ZERO, Agent::NicDma, 1000, 500);
        c.record_dma_read(Nanos::ZERO, Agent::DiskDma, 64, 0);
        let t = c.totals();
        assert_eq!(t.dram_read_bytes, 1064);
        assert_eq!(t.dram_read_nic_bytes, 1000);
        assert_eq!(t.dram_read_disk_bytes, 64);
        assert_eq!(t.dma_read_hit_bytes, 500);
    }
}
