//! Time-bucketed DRAM traffic and LLC-miss counters.
//!
//! These are the simulation's equivalent of the paper's uncore PMC
//! measurements: memory READ/WRITE throughput (Figs 3, 11c/d, 13c/d)
//! and the LLC-miss rate ("CPU reads served from DRAM", Figs 11f/13f).

use crate::Agent;
use dcn_simcore::{Nanos, TimeBuckets};

/// Aggregated counters; all byte quantities are DRAM traffic, not
/// cache traffic.
pub struct MemCounters {
    dram_rd: TimeBuckets,
    dram_wr: TimeBuckets,
    dram_rd_cpu: TimeBuckets,
    dram_rd_nic: TimeBuckets,
    miss_lines: TimeBuckets,
    /// Lifetime totals (cheap cross-checks for tests).
    pub total_dram_rd: u64,
    pub total_dram_wr: u64,
    pub total_dma_write_bytes: u64,
    pub total_dma_read_hit_bytes: u64,
}

impl MemCounters {
    #[must_use]
    pub fn new(bucket: Nanos) -> Self {
        MemCounters {
            dram_rd: TimeBuckets::new(bucket),
            dram_wr: TimeBuckets::new(bucket),
            dram_rd_cpu: TimeBuckets::new(bucket),
            dram_rd_nic: TimeBuckets::new(bucket),
            miss_lines: TimeBuckets::new(bucket),
            total_dram_rd: 0,
            total_dram_wr: 0,
            total_dma_write_bytes: 0,
            total_dma_read_hit_bytes: 0,
        }
    }

    pub(crate) fn record_dma_write(&mut self, _now: Nanos, _agent: Agent, bytes: u64) {
        // DDIO: device writes land in LLC; DRAM traffic happens only at
        // eviction (record_writeback). We still track the DMA volume.
        self.total_dma_write_bytes += bytes;
    }

    pub(crate) fn record_dma_read(&mut self, now: Nanos, agent: Agent, dram_bytes: u64, hit_bytes: u64) {
        if dram_bytes > 0 {
            self.dram_rd.add(now, dram_bytes as f64);
            self.total_dram_rd += dram_bytes;
            if agent == Agent::NicDma {
                self.dram_rd_nic.add(now, dram_bytes as f64);
            }
        }
        self.total_dma_read_hit_bytes += hit_bytes;
    }

    pub(crate) fn record_cpu_access(&mut self, now: Nanos, dram_bytes: u64, _hit_bytes: u64, miss_lines: u64) {
        if dram_bytes > 0 {
            self.dram_rd.add(now, dram_bytes as f64);
            self.dram_rd_cpu.add(now, dram_bytes as f64);
            self.total_dram_rd += dram_bytes;
        }
        if miss_lines > 0 {
            self.miss_lines.add(now, miss_lines as f64);
        }
    }

    pub(crate) fn record_writeback(&mut self, now: Nanos, bytes: u64) {
        self.dram_wr.add(now, bytes as f64);
        self.total_dram_wr += bytes;
    }

    pub(crate) fn record_dram_write(&mut self, now: Nanos, _agent: Agent, bytes: u64) {
        self.dram_wr.add(now, bytes as f64);
        self.total_dram_wr += bytes;
    }

    /// Steady-state rates over `[warmup, end)`.
    #[must_use]
    pub fn snapshot(&self, warmup: Nanos, end: Nanos) -> MemSnapshot {
        MemSnapshot {
            dram_read_bytes_per_sec: self.dram_rd.rate_per_sec(warmup, end),
            dram_write_bytes_per_sec: self.dram_wr.rate_per_sec(warmup, end),
            dram_read_cpu_bytes_per_sec: self.dram_rd_cpu.rate_per_sec(warmup, end),
            dram_read_nic_bytes_per_sec: self.dram_rd_nic.rate_per_sec(warmup, end),
            llc_miss_lines_per_sec: self.miss_lines.rate_per_sec(warmup, end),
        }
    }
}

/// Steady-state memory rates, in the units the paper plots.
#[derive(Clone, Copy, Debug, Default)]
pub struct MemSnapshot {
    pub dram_read_bytes_per_sec: f64,
    pub dram_write_bytes_per_sec: f64,
    pub dram_read_cpu_bytes_per_sec: f64,
    pub dram_read_nic_bytes_per_sec: f64,
    pub llc_miss_lines_per_sec: f64,
}

impl MemSnapshot {
    /// Memory read throughput in Gb/s (Figs 11c/13c y-axis).
    #[must_use]
    pub fn read_gbps(&self) -> f64 {
        self.dram_read_bytes_per_sec * 8.0 / 1e9
    }
    /// Memory write throughput in Gb/s (Figs 11d/13d y-axis).
    #[must_use]
    pub fn write_gbps(&self) -> f64 {
        self.dram_write_bytes_per_sec * 8.0 / 1e9
    }
    /// LLC-miss reads per second ×10⁸ (Figs 11f/13f y-axis).
    #[must_use]
    pub fn miss_reads_e8(&self) -> f64 {
        self.llc_miss_lines_per_sec / 1e8
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn rates_read_out_in_gbps() {
        let mut c = MemCounters::new(Nanos::from_millis(1));
        // 1.25 GB over 100ms fully inside the window = 100 Gb/s.
        let total: u64 = 1_250_000_000;
        let chunks = 1000u64;
        for i in 0..chunks {
            c.record_cpu_access(
                Nanos::from_micros(i * 100),
                total / chunks,
                0,
                (total / chunks) / 64,
            );
        }
        let snap = c.snapshot(Nanos::ZERO, Nanos::from_millis(100));
        assert!((snap.read_gbps() - 100.0).abs() < 1.0, "{}", snap.read_gbps());
        assert!(snap.llc_miss_lines_per_sec > 0.0);
    }

    #[test]
    fn writebacks_count_as_dram_writes() {
        let mut c = MemCounters::new(Nanos::from_millis(1));
        c.record_writeback(Nanos::from_micros(10), 4096);
        assert_eq!(c.total_dram_wr, 4096);
    }
}
