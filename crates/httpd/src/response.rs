//! HTTP response header construction.
//!
//! Headers are always plaintext on the wire (even for "TLS" runs,
//! matching the paper's measurement setup §4.2); the body follows —
//! raw file content for plaintext runs, GCM-sealed records for
//! encrypted ones.

/// What the server decided about a request.
#[derive(Clone, Copy, Debug, PartialEq, Eq)]
pub enum ResponseInfo {
    /// Serve this many body bytes (the chunk size).
    Ok {
        body_len: u64,
    },
    /// Range resume: serve `body_len` body bytes starting at plaintext
    /// file offset `offset` (206). Record framing restarts at the
    /// response body, so the wire length formula matches `Ok`.
    Partial {
        body_len: u64,
        offset: u64,
    },
    NotFound,
    /// Load shed: the server is over its admission watermarks and
    /// refuses the request. `Retry-After` tells a well-behaved client
    /// when to knock again (milliseconds surfaced via
    /// `X-Retry-After-Ms`; the standard header carries whole seconds,
    /// rounded up).
    ServiceUnavailable {
        retry_after_ms: u64,
    },
    /// 431-style reject for oversized request lines / header blocks;
    /// the connection is torn down after this is sent.
    HeaderTooLarge,
}

/// Build the response header block.
#[must_use]
pub fn response_header(info: ResponseInfo, encrypted: bool) -> Vec<u8> {
    match info {
        ResponseInfo::Ok { body_len } => {
            // Encrypted bodies are longer on the wire (record framing
            // + GCM tags); Content-Length describes the wire body so
            // the client knows when the response ends.
            let wire_len = if encrypted {
                crate::response::encrypted_body_len(body_len)
            } else {
                body_len
            };
            format!(
                "HTTP/1.1 200 OK\r\nServer: atlas/0.1\r\nContent-Type: video/mp4\r\n\
                 Content-Length: {wire_len}\r\nX-Body-Encrypted: {}\r\n\r\n",
                if encrypted { "1" } else { "0" }
            )
            .into_bytes()
        }
        ResponseInfo::Partial { body_len, offset } => {
            let wire_len = if encrypted {
                crate::response::encrypted_body_len(body_len)
            } else {
                body_len
            };
            // Content-Range carries plaintext offsets; Content-Length
            // stays the wire body length so the client scanner works
            // identically for full and partial responses.
            let last = offset + body_len.saturating_sub(1);
            format!(
                "HTTP/1.1 206 Partial Content\r\nServer: atlas/0.1\r\nContent-Type: video/mp4\r\n\
                 Content-Range: bytes {offset}-{last}/*\r\n\
                 Content-Length: {wire_len}\r\nX-Body-Encrypted: {}\r\n\r\n",
                if encrypted { "1" } else { "0" }
            )
            .into_bytes()
        }
        ResponseInfo::NotFound => b"HTTP/1.1 404 Not Found\r\nContent-Length: 0\r\n\r\n".to_vec(),
        ResponseInfo::ServiceUnavailable { retry_after_ms } => format!(
            "HTTP/1.1 503 Service Unavailable\r\nServer: atlas/0.1\r\n\
             Retry-After: {}\r\nX-Retry-After-Ms: {retry_after_ms}\r\n\
             Content-Length: 0\r\n\r\n",
            retry_after_ms.div_ceil(1000).max(1)
        )
        .into_bytes(),
        ResponseInfo::HeaderTooLarge => b"HTTP/1.1 431 Request Header Fields Too Large\r\n\
              Connection: close\r\nContent-Length: 0\r\n\r\n"
            .to_vec(),
    }
}

/// Plaintext bytes per TLS-style record (dcn_crypto::RECORD_PAYLOAD_MAX).
pub const RECORD_PLAIN: u64 = 16 * 1024;
/// Wire bytes per full record (payload + header + GCM tag).
pub const RECORD_WIRE: u64 = RECORD_PLAIN + RECORD_OVERHEAD;
/// Record framing overhead: 5-byte header + 16-byte GCM tag.
pub const RECORD_OVERHEAD: u64 = 5 + 16;

/// Wire length of an encrypted body: one TLS-style record per
/// RECORD_PAYLOAD_MAX plaintext bytes, each adding header + tag.
#[must_use]
pub fn encrypted_body_len(plain_len: u64) -> u64 {
    let records = plain_len.div_ceil(RECORD_PLAIN).max(1);
    plain_len + records * RECORD_OVERHEAD
}

/// Fully parsed response head (client side).
#[derive(Clone, Copy, Debug, PartialEq, Eq)]
pub struct ResponseHead {
    pub header_len: usize,
    pub content_length: u64,
    pub encrypted: bool,
    /// HTTP status code from the status line (200, 206, 503, ...).
    pub status: u16,
    /// Server-requested backoff (503 only), in virtual milliseconds.
    pub retry_after_ms: Option<u64>,
}

/// Minimal response-header scanner for the client side: returns
/// (header_len, content_length, encrypted) once the full header block
/// is buffered.
#[must_use]
pub fn scan_response_header(buf: &[u8]) -> Option<(usize, u64, bool)> {
    scan_response_head(buf).map(|h| (h.header_len, h.content_length, h.encrypted))
}

/// Scanner variant that also surfaces the status code and any
/// Retry-After backoff, for clients that react to load shedding.
#[must_use]
pub fn scan_response_head(buf: &[u8]) -> Option<ResponseHead> {
    let end = buf.windows(4).position(|w| w == b"\r\n\r\n")? + 4;
    let text = std::str::from_utf8(&buf[..end]).ok()?;
    let mut lines = text.split("\r\n");
    let status: u16 = lines.next()?.split(' ').nth(1)?.parse().ok()?;
    let mut content_length = None;
    let mut encrypted = false;
    let mut retry_after_ms = None;
    let mut retry_after_s = None;
    for line in lines {
        if let Some((k, v)) = line.split_once(':') {
            if k.eq_ignore_ascii_case("content-length") {
                content_length = v.trim().parse().ok();
            } else if k.eq_ignore_ascii_case("x-body-encrypted") {
                encrypted = v.trim() == "1";
            } else if k.eq_ignore_ascii_case("x-retry-after-ms") {
                retry_after_ms = v.trim().parse().ok();
            } else if k.eq_ignore_ascii_case("retry-after") {
                retry_after_s = v.trim().parse::<u64>().ok();
            }
        }
    }
    Some(ResponseHead {
        header_len: end,
        content_length: content_length?,
        encrypted,
        status,
        retry_after_ms: retry_after_ms.or(retry_after_s.map(|s| s * 1000)),
    })
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn ok_header_round_trips_through_scanner() {
        let h = response_header(
            ResponseInfo::Ok {
                body_len: 300 * 1024,
            },
            false,
        );
        let (hl, cl, enc) = scan_response_header(&h).unwrap();
        assert_eq!(hl, h.len());
        assert_eq!(cl, 300 * 1024);
        assert!(!enc);
    }

    #[test]
    fn encrypted_length_accounts_for_records() {
        // 300 KiB = 18.75 → 19 records of 16 KiB.
        let plain = 300 * 1024;
        let wire = encrypted_body_len(plain);
        assert_eq!(wire, plain + 19 * 21);
        let h = response_header(ResponseInfo::Ok { body_len: plain }, true);
        let (_, cl, enc) = scan_response_header(&h).unwrap();
        assert_eq!(cl, wire);
        assert!(enc);
    }

    #[test]
    fn scanner_waits_for_full_header() {
        let h = response_header(ResponseInfo::Ok { body_len: 10 }, false);
        assert!(scan_response_header(&h[..h.len() - 3]).is_none());
    }

    #[test]
    fn partial_header_scans_like_full() {
        let h = response_header(
            ResponseInfo::Partial {
                body_len: 100 * 1024,
                offset: 200 * 1024,
            },
            true,
        );
        let (hl, cl, enc) = scan_response_header(&h).unwrap();
        assert_eq!(hl, h.len());
        // 100 KiB = 6.25 → 7 records.
        assert_eq!(cl, 100 * 1024 + 7 * 21);
        assert!(enc);
        assert!(std::str::from_utf8(&h).unwrap().contains("206 Partial"));
    }

    #[test]
    fn not_found_has_zero_length() {
        let h = response_header(ResponseInfo::NotFound, false);
        let (_, cl, _) = scan_response_header(&h).unwrap();
        assert_eq!(cl, 0);
    }

    #[test]
    fn service_unavailable_round_trips_retry_after() {
        let h = response_header(
            ResponseInfo::ServiceUnavailable {
                retry_after_ms: 250,
            },
            true,
        );
        let head = scan_response_head(&h).unwrap();
        assert_eq!(head.status, 503);
        assert_eq!(head.content_length, 0);
        assert_eq!(head.retry_after_ms, Some(250));
        // The standard header carries whole seconds, rounded up.
        assert!(std::str::from_utf8(&h)
            .unwrap()
            .contains("Retry-After: 1\r\n"));
    }

    #[test]
    fn header_too_large_is_zero_length_431() {
        let h = response_header(ResponseInfo::HeaderTooLarge, false);
        let head = scan_response_head(&h).unwrap();
        assert_eq!(head.status, 431);
        assert_eq!(head.content_length, 0);
    }

    #[test]
    fn scanner_surfaces_status_for_ok_responses() {
        let h = response_header(ResponseInfo::Ok { body_len: 10 }, false);
        let head = scan_response_head(&h).unwrap();
        assert_eq!(head.status, 200);
        assert_eq!(head.retry_after_ms, None);
    }

    #[test]
    fn retry_after_seconds_fallback_when_ms_header_absent() {
        let h = b"HTTP/1.1 503 Service Unavailable\r\nRetry-After: 2\r\nContent-Length: 0\r\n\r\n";
        assert_eq!(scan_response_head(h).unwrap().retry_after_ms, Some(2000));
    }
}
