//! Incremental HTTP/1.1 request parser.

/// A parsed GET request.
#[derive(Clone, Debug, PartialEq, Eq)]
pub struct HttpRequest {
    pub path: String,
    /// `Connection: close` requested (default for HTTP/1.1 is
    /// keep-alive).
    pub close: bool,
    /// Open-ended range request (`Range: bytes=N-`): resume the body
    /// at plaintext offset N. Used by clients reconnecting to a
    /// replica after their server died mid-stream. Other range forms
    /// are ignored (full response served).
    pub range_start: Option<u64>,
}

/// Parse failures (connection-fatal, as in nginx).
#[derive(Clone, Copy, PartialEq, Eq, Debug)]
pub enum HttpError {
    BadRequestLine,
    UnsupportedMethod,
    HeaderTooLarge,
}

const MAX_HEADER: usize = 8 * 1024;

/// Accumulates bytes until full request heads are available.
/// Pipelined requests are surfaced one per call.
#[derive(Default)]
pub struct RequestParser {
    buf: Vec<u8>,
}

impl RequestParser {
    #[must_use]
    pub fn new() -> Self {
        Self::default()
    }

    /// Feed received bytes.
    pub fn push(&mut self, data: &[u8]) {
        self.buf.extend_from_slice(data);
    }

    #[must_use]
    pub fn buffered(&self) -> usize {
        self.buf.len()
    }

    /// Try to extract the next complete request.
    pub fn next_request(&mut self) -> Result<Option<HttpRequest>, HttpError> {
        let Some(end) = find_double_crlf(&self.buf) else {
            if self.buf.len() > MAX_HEADER {
                return Err(HttpError::HeaderTooLarge);
            }
            return Ok(None);
        };
        let head = &self.buf[..end];
        let text = std::str::from_utf8(head).map_err(|_| HttpError::BadRequestLine)?;
        let mut lines = text.split("\r\n");
        let request_line = lines.next().ok_or(HttpError::BadRequestLine)?;
        let mut parts = request_line.split(' ');
        let method = parts.next().ok_or(HttpError::BadRequestLine)?;
        let path = parts.next().ok_or(HttpError::BadRequestLine)?;
        let version = parts.next().ok_or(HttpError::BadRequestLine)?;
        if method != "GET" {
            return Err(HttpError::UnsupportedMethod);
        }
        if !version.starts_with("HTTP/1.") {
            return Err(HttpError::BadRequestLine);
        }
        let mut close = false;
        let mut range_start = None;
        for line in lines {
            if let Some((k, v)) = line.split_once(':') {
                if k.eq_ignore_ascii_case("connection") && v.trim().eq_ignore_ascii_case("close") {
                    close = true;
                } else if k.eq_ignore_ascii_case("range") {
                    range_start = parse_range_start(v.trim());
                }
            }
        }
        let req = HttpRequest {
            path: path.to_string(),
            close,
            range_start,
        };
        self.buf.drain(..end + 4);
        Ok(Some(req))
    }
}

fn find_double_crlf(buf: &[u8]) -> Option<usize> {
    buf.windows(4).position(|w| w == b"\r\n\r\n")
}

/// `bytes=N-` → Some(N); any other range form is unsupported.
fn parse_range_start(v: &str) -> Option<u64> {
    let spec = v.strip_prefix("bytes=")?;
    let start = spec.strip_suffix('-')?;
    start.parse().ok()
}

/// Build a GET request (what the client fleet sends).
#[must_use]
pub fn build_get(path: &str, host: &str) -> Vec<u8> {
    format!("GET {path} HTTP/1.1\r\nHost: {host}\r\nUser-Agent: dcn-weighttp/0.1\r\n\r\n")
        .into_bytes()
}

/// Build a resuming GET: `Range: bytes=start-` asks the server to
/// serve the body from plaintext offset `start` to the end.
#[must_use]
pub fn build_get_range(path: &str, host: &str, start: u64) -> Vec<u8> {
    format!(
        "GET {path} HTTP/1.1\r\nHost: {host}\r\nUser-Agent: dcn-weighttp/0.1\r\n\
         Range: bytes={start}-\r\n\r\n"
    )
    .into_bytes()
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn parses_complete_request() {
        let mut p = RequestParser::new();
        p.push(&build_get("/chunk/42", "cdn.example"));
        let r = p.next_request().unwrap().unwrap();
        assert_eq!(r.path, "/chunk/42");
        assert!(!r.close);
        assert!(p.next_request().unwrap().is_none());
        assert_eq!(p.buffered(), 0);
    }

    #[test]
    fn handles_split_arrival() {
        let req = build_get("/chunk/7", "h");
        let mut p = RequestParser::new();
        p.push(&req[..10]);
        assert!(p.next_request().unwrap().is_none());
        p.push(&req[10..]);
        assert_eq!(p.next_request().unwrap().unwrap().path, "/chunk/7");
    }

    #[test]
    fn handles_pipelined_requests() {
        let mut p = RequestParser::new();
        p.push(&build_get("/chunk/1", "h"));
        p.push(&build_get("/chunk/2", "h"));
        assert_eq!(p.next_request().unwrap().unwrap().path, "/chunk/1");
        assert_eq!(p.next_request().unwrap().unwrap().path, "/chunk/2");
        assert!(p.next_request().unwrap().is_none());
    }

    #[test]
    fn range_request_round_trips() {
        let mut p = RequestParser::new();
        p.push(&build_get_range("/chunk/9", "h", 163_840));
        let r = p.next_request().unwrap().unwrap();
        assert_eq!(r.path, "/chunk/9");
        assert_eq!(r.range_start, Some(163_840));
    }

    #[test]
    fn plain_get_has_no_range() {
        let mut p = RequestParser::new();
        p.push(&build_get("/chunk/9", "h"));
        assert_eq!(p.next_request().unwrap().unwrap().range_start, None);
    }

    #[test]
    fn unsupported_range_forms_ignored() {
        for v in ["bytes=0-99", "bytes=-500", "records=3-"] {
            let mut p = RequestParser::new();
            p.push(format!("GET /x HTTP/1.1\r\nRange: {v}\r\n\r\n").as_bytes());
            assert_eq!(p.next_request().unwrap().unwrap().range_start, None);
        }
    }

    #[test]
    fn connection_close_detected() {
        let mut p = RequestParser::new();
        p.push(b"GET /x HTTP/1.1\r\nConnection: close\r\n\r\n");
        assert!(p.next_request().unwrap().unwrap().close);
    }

    #[test]
    fn rejects_non_get() {
        let mut p = RequestParser::new();
        p.push(b"POST /x HTTP/1.1\r\n\r\n");
        assert_eq!(p.next_request(), Err(HttpError::UnsupportedMethod));
    }

    #[test]
    fn rejects_garbage() {
        let mut p = RequestParser::new();
        p.push(b"\xff\xfe\x00bogus\r\n\r\n");
        assert!(p.next_request().is_err());
    }

    #[test]
    fn oversized_header_rejected() {
        let mut p = RequestParser::new();
        p.push(&vec![b'a'; 9000]);
        assert_eq!(p.next_request(), Err(HttpError::HeaderTooLarge));
    }
}
