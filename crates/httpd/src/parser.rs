//! Incremental HTTP/1.1 request parser.

/// A parsed GET request.
#[derive(Clone, Debug, PartialEq, Eq)]
pub struct HttpRequest {
    pub path: String,
    /// `Connection: close` requested (default for HTTP/1.1 is
    /// keep-alive).
    pub close: bool,
    /// Open-ended range request (`Range: bytes=N-`): resume the body
    /// at plaintext offset N. Used by clients reconnecting to a
    /// replica after their server died mid-stream. Other range forms
    /// are ignored (full response served).
    pub range_start: Option<u64>,
}

/// Parse failures (connection-fatal, as in nginx).
#[derive(Clone, Copy, PartialEq, Eq, Debug)]
pub enum HttpError {
    BadRequestLine,
    UnsupportedMethod,
    HeaderTooLarge,
    RequestLineTooLong,
}

/// Hard cap on a request head (request line + all headers). Anything
/// larger is rejected with a 431-style abort before it can pin server
/// memory — the parser never buffers past this.
pub const MAX_HEADER: usize = 8 * 1024;
/// Cap on the request line alone (nginx: large_client_header_buffers).
pub const MAX_REQUEST_LINE: usize = 2 * 1024;

/// Accumulates bytes until full request heads are available.
/// Pipelined requests are surfaced one per call.
#[derive(Default)]
pub struct RequestParser {
    buf: Vec<u8>,
}

impl RequestParser {
    #[must_use]
    pub fn new() -> Self {
        Self::default()
    }

    /// Feed received bytes.
    pub fn push(&mut self, data: &[u8]) {
        self.buf.extend_from_slice(data);
    }

    #[must_use]
    pub fn buffered(&self) -> usize {
        self.buf.len()
    }

    /// Try to extract the next complete request.
    pub fn next_request(&mut self) -> Result<Option<HttpRequest>, HttpError> {
        let Some(end) = find_double_crlf(&self.buf) else {
            if self.buf.len() > MAX_HEADER {
                return Err(HttpError::HeaderTooLarge);
            }
            // No complete head yet, but an unterminated first line can
            // already be over the cap — reject early instead of
            // buffering a slowly trickled oversized request line.
            if find_crlf(&self.buf).is_none() && self.buf.len() > MAX_REQUEST_LINE {
                return Err(HttpError::RequestLineTooLong);
            }
            return Ok(None);
        };
        if end > MAX_HEADER {
            // A complete head can still be oversized when it arrives
            // in one push (the no-terminator check above never saw it).
            return Err(HttpError::HeaderTooLarge);
        }
        let head = &self.buf[..end];
        if find_crlf(head).unwrap_or(head.len()) > MAX_REQUEST_LINE {
            return Err(HttpError::RequestLineTooLong);
        }
        let text = std::str::from_utf8(head).map_err(|_| HttpError::BadRequestLine)?;
        let mut lines = text.split("\r\n");
        let request_line = lines.next().ok_or(HttpError::BadRequestLine)?;
        let mut parts = request_line.split(' ');
        let method = parts.next().ok_or(HttpError::BadRequestLine)?;
        let path = parts.next().ok_or(HttpError::BadRequestLine)?;
        let version = parts.next().ok_or(HttpError::BadRequestLine)?;
        if method != "GET" {
            return Err(HttpError::UnsupportedMethod);
        }
        if !version.starts_with("HTTP/1.") {
            return Err(HttpError::BadRequestLine);
        }
        let mut close = false;
        let mut range_start = None;
        for line in lines {
            if let Some((k, v)) = line.split_once(':') {
                if k.eq_ignore_ascii_case("connection") && v.trim().eq_ignore_ascii_case("close") {
                    close = true;
                } else if k.eq_ignore_ascii_case("range") {
                    range_start = parse_range_start(v.trim());
                }
            }
        }
        let req = HttpRequest {
            path: path.to_string(),
            close,
            range_start,
        };
        self.buf.drain(..end + 4);
        Ok(Some(req))
    }
}

fn find_double_crlf(buf: &[u8]) -> Option<usize> {
    buf.windows(4).position(|w| w == b"\r\n\r\n")
}

fn find_crlf(buf: &[u8]) -> Option<usize> {
    buf.windows(2).position(|w| w == b"\r\n")
}

/// `bytes=N-` → Some(N); any other range form is unsupported.
fn parse_range_start(v: &str) -> Option<u64> {
    let spec = v.strip_prefix("bytes=")?;
    let start = spec.strip_suffix('-')?;
    start.parse().ok()
}

/// Build a GET request (what the client fleet sends).
#[must_use]
pub fn build_get(path: &str, host: &str) -> Vec<u8> {
    format!("GET {path} HTTP/1.1\r\nHost: {host}\r\nUser-Agent: dcn-weighttp/0.1\r\n\r\n")
        .into_bytes()
}

/// Build a resuming GET: `Range: bytes=start-` asks the server to
/// serve the body from plaintext offset `start` to the end.
#[must_use]
pub fn build_get_range(path: &str, host: &str, start: u64) -> Vec<u8> {
    format!(
        "GET {path} HTTP/1.1\r\nHost: {host}\r\nUser-Agent: dcn-weighttp/0.1\r\n\
         Range: bytes={start}-\r\n\r\n"
    )
    .into_bytes()
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn parses_complete_request() {
        let mut p = RequestParser::new();
        p.push(&build_get("/chunk/42", "cdn.example"));
        let r = p.next_request().unwrap().unwrap();
        assert_eq!(r.path, "/chunk/42");
        assert!(!r.close);
        assert!(p.next_request().unwrap().is_none());
        assert_eq!(p.buffered(), 0);
    }

    #[test]
    fn handles_split_arrival() {
        let req = build_get("/chunk/7", "h");
        let mut p = RequestParser::new();
        p.push(&req[..10]);
        assert!(p.next_request().unwrap().is_none());
        p.push(&req[10..]);
        assert_eq!(p.next_request().unwrap().unwrap().path, "/chunk/7");
    }

    #[test]
    fn handles_pipelined_requests() {
        let mut p = RequestParser::new();
        p.push(&build_get("/chunk/1", "h"));
        p.push(&build_get("/chunk/2", "h"));
        assert_eq!(p.next_request().unwrap().unwrap().path, "/chunk/1");
        assert_eq!(p.next_request().unwrap().unwrap().path, "/chunk/2");
        assert!(p.next_request().unwrap().is_none());
    }

    #[test]
    fn range_request_round_trips() {
        let mut p = RequestParser::new();
        p.push(&build_get_range("/chunk/9", "h", 163_840));
        let r = p.next_request().unwrap().unwrap();
        assert_eq!(r.path, "/chunk/9");
        assert_eq!(r.range_start, Some(163_840));
    }

    #[test]
    fn plain_get_has_no_range() {
        let mut p = RequestParser::new();
        p.push(&build_get("/chunk/9", "h"));
        assert_eq!(p.next_request().unwrap().unwrap().range_start, None);
    }

    #[test]
    fn unsupported_range_forms_ignored() {
        for v in ["bytes=0-99", "bytes=-500", "records=3-"] {
            let mut p = RequestParser::new();
            p.push(format!("GET /x HTTP/1.1\r\nRange: {v}\r\n\r\n").as_bytes());
            assert_eq!(p.next_request().unwrap().unwrap().range_start, None);
        }
    }

    #[test]
    fn connection_close_detected() {
        let mut p = RequestParser::new();
        p.push(b"GET /x HTTP/1.1\r\nConnection: close\r\n\r\n");
        assert!(p.next_request().unwrap().unwrap().close);
    }

    #[test]
    fn rejects_non_get() {
        let mut p = RequestParser::new();
        p.push(b"POST /x HTTP/1.1\r\n\r\n");
        assert_eq!(p.next_request(), Err(HttpError::UnsupportedMethod));
    }

    #[test]
    fn rejects_garbage() {
        let mut p = RequestParser::new();
        p.push(b"\xff\xfe\x00bogus\r\n\r\n");
        assert!(p.next_request().is_err());
    }

    #[test]
    fn oversized_header_rejected() {
        let mut p = RequestParser::new();
        p.push(&vec![b'a'; 9000]);
        assert_eq!(p.next_request(), Err(HttpError::HeaderTooLarge));
    }

    #[test]
    fn oversized_complete_head_in_one_push_rejected() {
        // Terminated head over the cap, delivered whole: the
        // no-terminator path never fires, the explicit end-check must.
        let mut req = b"GET /x HTTP/1.1\r\n".to_vec();
        while req.len() <= MAX_HEADER {
            req.extend_from_slice(b"X-Pad: aaaaaaaaaaaaaaaaaaaaaaaaaaaaaaaa\r\n");
        }
        req.extend_from_slice(b"\r\n");
        let mut p = RequestParser::new();
        p.push(&req);
        assert_eq!(p.next_request(), Err(HttpError::HeaderTooLarge));
    }

    #[test]
    fn oversized_request_line_rejected_before_terminator() {
        let mut p = RequestParser::new();
        let mut line = b"GET /".to_vec();
        line.extend(std::iter::repeat_n(b'a', MAX_REQUEST_LINE + 100));
        p.push(&line); // no CRLF yet
        assert_eq!(p.next_request(), Err(HttpError::RequestLineTooLong));
    }

    #[test]
    fn oversized_request_line_with_valid_headers_rejected() {
        let mut p = RequestParser::new();
        let mut req = b"GET /".to_vec();
        req.extend(std::iter::repeat_n(b'b', MAX_REQUEST_LINE));
        req.extend_from_slice(b" HTTP/1.1\r\nHost: h\r\n\r\n");
        p.push(&req);
        assert_eq!(p.next_request(), Err(HttpError::RequestLineTooLong));
    }

    #[test]
    fn request_line_just_under_cap_parses() {
        let path_len = MAX_REQUEST_LINE - "GET  HTTP/1.1".len() - 1;
        let path: String = std::iter::repeat_n('p', path_len).collect();
        let mut p = RequestParser::new();
        p.push(format!("GET /{} HTTP/1.1\r\n\r\n", &path[1..]).as_bytes());
        assert!(p.next_request().unwrap().is_some());
    }

    // ---- malformed-request property tests: whatever arrives, the ----
    // ---- parser returns Ok/Err without panicking or unbounded buf ----

    #[test]
    fn prop_truncated_requests_never_panic() {
        let req = build_get_range("/chunk/123456", "host.example", 98_304);
        for cut in 0..req.len() {
            let mut p = RequestParser::new();
            p.push(&req[..cut]);
            let _ = p.next_request();
            p.push(&req[cut..]);
            assert_eq!(p.next_request().unwrap().unwrap().path, "/chunk/123456");
        }
    }

    #[test]
    fn prop_random_garbage_never_panics() {
        let mut rng = dcn_simcore::SimRng::new(0x6A5F);
        for trial in 0..200 {
            let mut p = RequestParser::new();
            let n = rng.gen_range(1, 12_000) as usize;
            let mut junk = vec![0u8; n];
            for b in &mut junk {
                *b = rng.next_u64() as u8;
            }
            // Interleave garbage in random-sized pushes.
            let mut off = 0;
            while off < junk.len() {
                let step = rng.gen_range(1, 700) as usize;
                let end = (off + step).min(junk.len());
                p.push(&junk[off..end]);
                let _ = p.next_request(); // must not panic
                off = end;
            }
            // Buffer stays bounded: either an error was surfaced or
            // we're still under the cap waiting for a terminator.
            assert!(
                p.buffered() <= MAX_HEADER + 12_000,
                "trial {trial}: unbounded buffering"
            );
        }
    }

    #[test]
    fn prop_garbage_interleaved_with_valid_requests() {
        let mut rng = dcn_simcore::SimRng::new(0xBEEF);
        for _ in 0..100 {
            let mut p = RequestParser::new();
            let mut junk = vec![0u8; rng.gen_range(1, 64) as usize];
            for b in &mut junk {
                *b = rng.next_u64() as u8;
            }
            // Valid request, then garbage fused onto the stream: the
            // valid one parses, the garbage errors or waits — no panic.
            p.push(&build_get("/chunk/1", "h"));
            p.push(&junk);
            assert_eq!(p.next_request().unwrap().unwrap().path, "/chunk/1");
            let _ = p.next_request();
        }
    }

    #[test]
    fn prop_byte_at_a_time_arrival() {
        let req = build_get("/chunk/77", "h");
        let mut p = RequestParser::new();
        for &b in &req {
            p.push(&[b]);
            if let Ok(Some(r)) = p.next_request() {
                assert_eq!(r.path, "/chunk/77");
                return;
            }
        }
        panic!("request never parsed");
    }
}
