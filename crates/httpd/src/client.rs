//! The weighttp-like request driver (client application layer).
//!
//! "Each client establishes a long-lived TCP connection to the
//! server, and generates a series of HTTP requests with a new request
//! sent immediately after the previous one is served" (§4). The
//! driver consumes the response byte stream (headers + body),
//! verifies progress, and decides when to fire the next request.

use crate::response::scan_response_header;
use dcn_simcore::{SimRng, Zipf};
use dcn_store::FileId;

/// Per-connection request state machine.
pub struct RequestDriver {
    catalog_files: u64,
    /// Popularity skew; None = uniform over distinct files (the
    /// uncachable 0% BC workload), Some(zipf) for cacheable ones.
    zipf: Option<Zipf>,
    /// For the 100% BC workload the paper pins requests to a small
    /// hot set that always fits in cache.
    hot_set: Option<u64>,
    rng: SimRng,
    /// Bytes of the current response still expected (None = waiting
    /// for header).
    body_remaining: Option<u64>,
    header_buf: Vec<u8>,
    pub requests_issued: u64,
    pub responses_done: u64,
    pub body_bytes: u64,
    /// Encrypted-body flag of the in-progress response.
    pub current_encrypted: bool,
}

impl RequestDriver {
    /// Uniform random requests over the whole catalog — effectively
    /// uncachable (the paper's 0% BC workload: "each video chunk is
    /// only requested once during the duration of the test").
    #[must_use]
    pub fn uncachable(catalog_files: u64, rng: SimRng) -> Self {
        RequestDriver {
            catalog_files,
            zipf: None,
            hot_set: None,
            rng,
            body_remaining: None,
            header_buf: Vec::new(),
            requests_issued: 0,
            responses_done: 0,
            body_bytes: 0,
            current_encrypted: false,
        }
    }

    /// Requests confined to a hot set that fits in the buffer cache
    /// (the 100% BC workload).
    #[must_use]
    pub fn cacheable(catalog_files: u64, hot_files: u64, rng: SimRng) -> Self {
        let mut d = Self::uncachable(catalog_files, rng);
        d.hot_set = Some(hot_files.min(catalog_files));
        d
    }

    /// Zipf-popular requests (realistic mixed workloads, used by the
    /// examples).
    #[must_use]
    pub fn zipf(catalog_files: u64, alpha: f64, rng: SimRng) -> Self {
        let mut d = Self::uncachable(catalog_files, rng);
        d.zipf = Some(Zipf::new(catalog_files, alpha));
        d
    }

    /// Pick the next file to request.
    pub fn next_file(&mut self) -> FileId {
        self.requests_issued += 1;
        if let Some(hot) = self.hot_set {
            return FileId(self.rng.gen_range(0, hot));
        }
        if let Some(z) = &self.zipf {
            return FileId(z.sample(&mut self.rng));
        }
        FileId(self.rng.gen_range(0, self.catalog_files))
    }

    /// Is a response currently outstanding?
    #[must_use]
    pub fn awaiting_response(&self) -> bool {
        self.body_remaining.is_some() || !self.header_buf.is_empty() || {
            self.requests_issued > self.responses_done
        }
    }

    /// Consume received stream bytes. Returns the number of
    /// *responses completed* by this data (each completion means the
    /// driver should send the next request).
    pub fn on_bytes(&mut self, mut data: &[u8]) -> u64 {
        let mut completed = 0;
        while !data.is_empty() {
            match self.body_remaining {
                Some(rem) => {
                    let n = rem.min(data.len() as u64);
                    self.body_bytes += n;
                    data = &data[n as usize..];
                    let left = rem - n;
                    if left == 0 {
                        self.body_remaining = None;
                        self.responses_done += 1;
                        completed += 1;
                    } else {
                        self.body_remaining = Some(left);
                    }
                }
                None => {
                    self.header_buf.extend_from_slice(data);
                    data = &[];
                    if let Some((hl, cl, enc)) = scan_response_header(&self.header_buf) {
                        self.current_encrypted = enc;
                        // Any bytes past the header are body bytes:
                        // recurse over the tail.
                        let tail = self.header_buf.split_off(hl);
                        self.header_buf.clear();
                        if cl == 0 {
                            self.responses_done += 1;
                            completed += 1;
                        } else {
                            self.body_remaining = Some(cl);
                        }
                        if !tail.is_empty() {
                            completed += self.on_bytes(&tail);
                        }
                    }
                }
            }
        }
        completed
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::response::{response_header, ResponseInfo};

    #[test]
    fn completes_response_across_fragments() {
        let mut d = RequestDriver::uncachable(100, SimRng::new(1));
        let _f = d.next_file();
        let mut stream = response_header(ResponseInfo::Ok { body_len: 1000 }, false);
        stream.extend_from_slice(&vec![7u8; 1000]);
        let mid = stream.len() / 2;
        assert_eq!(d.on_bytes(&stream[..mid]), 0);
        assert_eq!(d.on_bytes(&stream[mid..]), 1);
        assert_eq!(d.body_bytes, 1000);
        assert_eq!(d.responses_done, 1);
    }

    #[test]
    fn back_to_back_responses_in_one_burst() {
        let mut d = RequestDriver::uncachable(100, SimRng::new(1));
        let mut stream = Vec::new();
        for _ in 0..3 {
            stream.extend(response_header(ResponseInfo::Ok { body_len: 10 }, false));
            stream.extend_from_slice(&[0u8; 10]);
        }
        assert_eq!(d.on_bytes(&stream), 3);
    }

    #[test]
    fn uncachable_spreads_over_catalog() {
        let mut d = RequestDriver::uncachable(1_000_000, SimRng::new(2));
        let distinct: std::collections::HashSet<u64> = (0..1000).map(|_| d.next_file().0).collect();
        assert!(distinct.len() > 990, "uniform over 1M files ⇒ few repeats");
    }

    #[test]
    fn cacheable_stays_in_hot_set() {
        let mut d = RequestDriver::cacheable(1_000_000, 50, SimRng::new(2));
        for _ in 0..1000 {
            assert!(d.next_file().0 < 50);
        }
    }

    #[test]
    fn encrypted_flag_surfaces() {
        let mut d = RequestDriver::uncachable(10, SimRng::new(1));
        let h = response_header(ResponseInfo::Ok { body_len: 100 }, true);
        d.on_bytes(&h);
        assert!(d.current_encrypted);
    }
}
