//! The weighttp-like request driver (client application layer).
//!
//! "Each client establishes a long-lived TCP connection to the
//! server, and generates a series of HTTP requests with a new request
//! sent immediately after the previous one is served" (§4). The
//! driver consumes the response byte stream (headers + body),
//! verifies progress, and decides when to fire the next request.

use crate::response::{scan_response_head, RECORD_PLAIN, RECORD_WIRE};
use dcn_simcore::{RankPerm, SimRng, Zipf};
use dcn_store::FileId;

/// Where to pick up a response after its server died mid-stream: the
/// file being fetched and the record-aligned plaintext offset already
/// delivered in order. The reconnecting client sends
/// `Range: bytes=offset-` (relative to the *file*, so a resume of a
/// resume composes by adding bases).
#[derive(Clone, Copy, Debug, PartialEq, Eq)]
pub struct ResumePlan {
    pub file: FileId,
    /// Plaintext offset relative to the start of the aborted
    /// *response* (the caller adds any earlier resume base). Always a
    /// multiple of the record size, for both encrypted and plaintext
    /// bodies, so re-encrypted replica responses re-frame cleanly.
    pub offset: u64,
}

/// Per-connection request state machine.
pub struct RequestDriver {
    catalog_files: u64,
    /// Popularity skew; None = uniform over distinct files (the
    /// uncachable 0% BC workload), Some(zipf) for cacheable ones.
    zipf: Option<Zipf>,
    /// Rank → object-id permutation applied to Zipf samples. Scatters
    /// the popular head across the id space; with the seed shared by
    /// the tier engine, "popular" means the same objects on both
    /// sides. None = rank IS the id (legacy zipf workload).
    perm: Option<RankPerm>,
    /// For the 100% BC workload the paper pins requests to a small
    /// hot set that always fits in cache.
    hot_set: Option<u64>,
    rng: SimRng,
    /// Bytes of the current response still expected (None = waiting
    /// for header).
    body_remaining: Option<u64>,
    /// Wire Content-Length of the in-progress response (None until
    /// its header has been parsed). `body_total - body_remaining` is
    /// the in-order wire progress used to compute resume offsets.
    body_total: Option<u64>,
    /// File of the most recent request (cleared on completion) —
    /// what a reconnect would re-request.
    current_file: Option<FileId>,
    header_buf: Vec<u8>,
    pub requests_issued: u64,
    pub responses_done: u64,
    pub body_bytes: u64,
    /// Encrypted-body flag of the in-progress response.
    pub current_encrypted: bool,
    /// Responses abandoned mid-stream by `disconnect` (server died).
    pub responses_abandoned: u64,
    /// 503 load-shed responses received (each leaves the request
    /// outstanding; the caller retries after `take_retry_after`).
    pub rejections_503: u64,
    /// Pending server-requested backoff from the latest 503, in
    /// virtual milliseconds. Consumed by `take_retry_after`.
    retry_after_pending: Option<u64>,
}

impl RequestDriver {
    /// Uniform random requests over the whole catalog — effectively
    /// uncachable (the paper's 0% BC workload: "each video chunk is
    /// only requested once during the duration of the test").
    #[must_use]
    pub fn uncachable(catalog_files: u64, rng: SimRng) -> Self {
        RequestDriver {
            catalog_files,
            zipf: None,
            perm: None,
            hot_set: None,
            rng,
            body_remaining: None,
            body_total: None,
            current_file: None,
            header_buf: Vec::new(),
            requests_issued: 0,
            responses_done: 0,
            body_bytes: 0,
            current_encrypted: false,
            responses_abandoned: 0,
            rejections_503: 0,
            retry_after_pending: None,
        }
    }

    /// Requests confined to a hot set that fits in the buffer cache
    /// (the 100% BC workload).
    #[must_use]
    pub fn cacheable(catalog_files: u64, hot_files: u64, rng: SimRng) -> Self {
        let mut d = Self::uncachable(catalog_files, rng);
        d.hot_set = Some(hot_files.min(catalog_files));
        d
    }

    /// Zipf-popular requests (realistic mixed workloads, used by the
    /// examples).
    #[must_use]
    pub fn zipf(catalog_files: u64, alpha: f64, rng: SimRng) -> Self {
        let mut d = Self::uncachable(catalog_files, rng);
        d.zipf = Some(Zipf::new(catalog_files, alpha));
        d
    }

    /// Zipf-popular requests with the rank → object-id permutation the
    /// tiering engine seeds its hot set with: rank 0 is the hottest
    /// *object* (scattered somewhere in the id space), not id 0.
    #[must_use]
    pub fn zipf_perm(catalog_files: u64, alpha: f64, perm_seed: u64, rng: SimRng) -> Self {
        let mut d = Self::zipf(catalog_files, alpha, rng);
        d.perm = Some(RankPerm::new(catalog_files, perm_seed));
        d
    }

    /// Pick the next file to request.
    pub fn next_file(&mut self) -> FileId {
        let f = if let Some(hot) = self.hot_set {
            FileId(self.rng.gen_range(0, hot))
        } else if let Some(z) = &self.zipf {
            let rank = z.sample(&mut self.rng);
            FileId(self.perm.as_ref().map_or(rank, |p| p.apply(rank)))
        } else {
            FileId(self.rng.gen_range(0, self.catalog_files))
        };
        self.request_file(f);
        f
    }

    /// Issue a request for a caller-chosen file — ABR clients pick
    /// from the manifest instead of the popularity distribution, but
    /// still need the driver tracking `current_file` for 503 retries
    /// and resume plans.
    pub fn request_file(&mut self, f: FileId) {
        self.requests_issued += 1;
        self.current_file = Some(f);
    }

    /// File of the in-flight request, if any.
    #[must_use]
    pub fn current_file(&self) -> Option<FileId> {
        self.current_file
    }

    /// The connection carrying the in-flight response died: drop the
    /// partially parsed response and report where a reconnect should
    /// resume. Returns None when no request was outstanding. The
    /// request stays "issued but not done", so `awaiting_response`
    /// keeps gating until the resumed response completes.
    pub fn disconnect(&mut self) -> Option<ResumePlan> {
        let file = self.current_file?;
        let wire_got = match (self.body_total, self.body_remaining) {
            (Some(total), Some(rem)) => total - rem,
            // Header not (fully) received: restart from scratch.
            _ => 0,
        };
        // Only whole in-order records are safely consumable by the
        // client; resume at the last record boundary. Plaintext bodies
        // use the same granularity because the server floors range
        // starts to record boundaries (keeps encrypted re-framing
        // aligned with disk reads).
        let offset = if self.current_encrypted {
            (wire_got / RECORD_WIRE) * RECORD_PLAIN
        } else {
            (wire_got / RECORD_PLAIN) * RECORD_PLAIN
        };
        if self.body_remaining.is_some() || !self.header_buf.is_empty() {
            self.responses_abandoned += 1;
        }
        self.body_remaining = None;
        self.body_total = None;
        self.header_buf.clear();
        Some(ResumePlan { file, offset })
    }

    /// A 503 arrived: take the server-requested backoff (ms). The
    /// caller should re-send a GET for `current_file()` after waiting.
    pub fn take_retry_after(&mut self) -> Option<u64> {
        self.retry_after_pending.take()
    }

    /// Is a response currently outstanding?
    #[must_use]
    pub fn awaiting_response(&self) -> bool {
        self.body_remaining.is_some() || !self.header_buf.is_empty() || {
            self.requests_issued > self.responses_done
        }
    }

    /// Consume received stream bytes. Returns the number of
    /// *responses completed* by this data (each completion means the
    /// driver should send the next request).
    pub fn on_bytes(&mut self, mut data: &[u8]) -> u64 {
        let mut completed = 0;
        while !data.is_empty() {
            match self.body_remaining {
                Some(rem) => {
                    let n = rem.min(data.len() as u64);
                    self.body_bytes += n;
                    data = &data[n as usize..];
                    let left = rem - n;
                    if left == 0 {
                        self.body_remaining = None;
                        self.body_total = None;
                        self.current_file = None;
                        self.responses_done += 1;
                        completed += 1;
                    } else {
                        self.body_remaining = Some(left);
                    }
                }
                None => {
                    self.header_buf.extend_from_slice(data);
                    data = &[];
                    if let Some(head) = scan_response_head(&self.header_buf) {
                        self.current_encrypted = head.encrypted;
                        // Any bytes past the header are body bytes:
                        // recurse over the tail.
                        let tail = self.header_buf.split_off(head.header_len);
                        self.header_buf.clear();
                        let cl = head.content_length;
                        if head.status == 503 {
                            // Load shed: the request stays outstanding
                            // (`current_file` keeps the file to retry)
                            // and we honour the server's backoff.
                            self.rejections_503 += 1;
                            self.retry_after_pending = Some(head.retry_after_ms.unwrap_or(1000));
                        } else if cl == 0 {
                            self.current_file = None;
                            self.responses_done += 1;
                            completed += 1;
                        } else {
                            self.body_remaining = Some(cl);
                            self.body_total = Some(cl);
                        }
                        if !tail.is_empty() {
                            completed += self.on_bytes(&tail);
                        }
                    }
                }
            }
        }
        completed
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::response::{response_header, ResponseInfo};

    #[test]
    fn completes_response_across_fragments() {
        let mut d = RequestDriver::uncachable(100, SimRng::new(1));
        let _f = d.next_file();
        let mut stream = response_header(ResponseInfo::Ok { body_len: 1000 }, false);
        stream.extend_from_slice(&vec![7u8; 1000]);
        let mid = stream.len() / 2;
        assert_eq!(d.on_bytes(&stream[..mid]), 0);
        assert_eq!(d.on_bytes(&stream[mid..]), 1);
        assert_eq!(d.body_bytes, 1000);
        assert_eq!(d.responses_done, 1);
    }

    #[test]
    fn back_to_back_responses_in_one_burst() {
        let mut d = RequestDriver::uncachable(100, SimRng::new(1));
        let mut stream = Vec::new();
        for _ in 0..3 {
            stream.extend(response_header(ResponseInfo::Ok { body_len: 10 }, false));
            stream.extend_from_slice(&[0u8; 10]);
        }
        assert_eq!(d.on_bytes(&stream), 3);
    }

    #[test]
    fn uncachable_spreads_over_catalog() {
        let mut d = RequestDriver::uncachable(1_000_000, SimRng::new(2));
        let distinct: std::collections::HashSet<u64> = (0..1000).map(|_| d.next_file().0).collect();
        assert!(distinct.len() > 990, "uniform over 1M files ⇒ few repeats");
    }

    #[test]
    fn cacheable_stays_in_hot_set() {
        let mut d = RequestDriver::cacheable(1_000_000, 50, SimRng::new(2));
        for _ in 0..1000 {
            assert!(d.next_file().0 < 50);
        }
    }

    #[test]
    fn disconnect_mid_body_resumes_at_record_boundary() {
        let mut d = RequestDriver::uncachable(100, SimRng::new(1));
        let f = d.next_file();
        // Encrypted 300 KiB body; deliver header + 2.5 wire records.
        let mut stream = response_header(
            ResponseInfo::Ok {
                body_len: 300 * 1024,
            },
            true,
        );
        let hl = stream.len();
        stream.extend_from_slice(&vec![0u8; (2 * RECORD_WIRE + RECORD_WIRE / 2) as usize]);
        assert_eq!(d.on_bytes(&stream), 0);
        let plan = d.disconnect().unwrap();
        assert_eq!(plan.file, f);
        assert_eq!(plan.offset, 2 * RECORD_PLAIN);
        assert_eq!(d.responses_abandoned, 1);
        assert!(d.awaiting_response(), "request still outstanding");
        // The resumed (partial) response then completes normally.
        let mut resumed = response_header(
            ResponseInfo::Partial {
                body_len: 300 * 1024 - plan.offset,
                offset: plan.offset,
            },
            true,
        );
        let wire = crate::response::encrypted_body_len(300 * 1024 - plan.offset);
        resumed.extend_from_slice(&vec![0u8; wire as usize]);
        assert_eq!(d.on_bytes(&resumed), 1);
        assert!(!d.awaiting_response());
        let _ = hl;
    }

    #[test]
    fn disconnect_before_header_restarts_from_zero() {
        let mut d = RequestDriver::uncachable(100, SimRng::new(3));
        let f = d.next_file();
        d.on_bytes(b"HTTP/1.1 200 OK\r\nConte"); // torn header
        let plan = d.disconnect().unwrap();
        assert_eq!(plan, ResumePlan { file: f, offset: 0 });
        assert_eq!(d.responses_abandoned, 1);
    }

    #[test]
    fn disconnect_with_nothing_outstanding_is_none() {
        let mut d = RequestDriver::uncachable(100, SimRng::new(3));
        assert!(d.disconnect().is_none());
        let _f = d.next_file();
        let h = response_header(ResponseInfo::Ok { body_len: 5 }, false);
        d.on_bytes(&h);
        d.on_bytes(&[0u8; 5]);
        assert!(d.disconnect().is_none(), "completed response, idle conn");
        assert_eq!(d.responses_abandoned, 0);
    }

    #[test]
    fn plaintext_disconnect_floors_to_record_size() {
        let mut d = RequestDriver::uncachable(100, SimRng::new(4));
        let _f = d.next_file();
        let mut stream = response_header(
            ResponseInfo::Ok {
                body_len: 300 * 1024,
            },
            false,
        );
        stream.extend_from_slice(&vec![0u8; 50_000]);
        d.on_bytes(&stream);
        let plan = d.disconnect().unwrap();
        assert_eq!(plan.offset, (50_000 / RECORD_PLAIN) * RECORD_PLAIN);
    }

    #[test]
    fn rejected_503_keeps_request_outstanding_for_retry() {
        let mut d = RequestDriver::uncachable(100, SimRng::new(9));
        let f = d.next_file();
        let h = response_header(
            ResponseInfo::ServiceUnavailable { retry_after_ms: 75 },
            false,
        );
        assert_eq!(d.on_bytes(&h), 0, "a shed request does not complete");
        assert_eq!(d.rejections_503, 1);
        assert_eq!(d.take_retry_after(), Some(75));
        assert_eq!(d.take_retry_after(), None, "backoff consumed once");
        assert_eq!(d.current_file(), Some(f), "same file retried");
        assert!(d.awaiting_response());
        // The retried request is eventually served normally.
        let mut ok = response_header(ResponseInfo::Ok { body_len: 10 }, false);
        ok.extend_from_slice(&[0u8; 10]);
        assert_eq!(d.on_bytes(&ok), 1);
        assert!(!d.awaiting_response());
    }

    #[test]
    fn encrypted_flag_surfaces() {
        let mut d = RequestDriver::uncachable(10, SimRng::new(1));
        let h = response_header(ResponseInfo::Ok { body_len: 100 }, true);
        d.on_bytes(&h);
        assert!(d.current_encrypted);
    }
}
