//! # dcn-httpd — HTTP/1.1 for the streaming workload
//!
//! The application layer both stacks serve: persistent connections
//! carrying back-to-back GET requests for ~300 KB video chunks (§2,
//! §4). URLs name catalog files directly (`GET /chunk/<id>`), the
//! way a dumb CDN edge addresses content.
//!
//! The parser is incremental (bytes may arrive split across
//! segments) and strict about what a video server accepts; the
//! response builder emits the plaintext header block that precedes
//! the (possibly encrypted) body — the paper's setup transmits HTTP
//! headers in the clear even on "TLS" connections so the load
//! generator can parse responses cheaply (§4.2).

pub mod client;
pub mod parser;
pub mod response;

pub use client::{RequestDriver, ResumePlan};
pub use parser::{HttpError, HttpRequest, RequestParser};
pub use response::{response_header, ResponseInfo};

use dcn_store::FileId;

/// Path for a chunk request.
#[must_use]
pub fn chunk_path(file: FileId) -> String {
    format!("/chunk/{}", file.0)
}

/// Parse a `/chunk/<id>` path back to a file id.
#[must_use]
pub fn parse_chunk_path(path: &str) -> Option<FileId> {
    path.strip_prefix("/chunk/")?.parse().ok().map(FileId)
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn chunk_path_round_trip() {
        for id in [0u64, 1, 1_999_999] {
            assert_eq!(parse_chunk_path(&chunk_path(FileId(id))), Some(FileId(id)));
        }
        assert_eq!(parse_chunk_path("/other/3"), None);
        assert_eq!(parse_chunk_path("/chunk/abc"), None);
    }
}
