//! HTTPS streaming: the full encrypted pipeline, end to end.
//!
//! Exercises the paper's headline path: on each TCP ACK the Atlas
//! server fetches the next 16 KiB of the requested chunk from an
//! NVMe queue pair via diskmap, encrypts it **in place** with
//! AES-128-GCM (nonce derived from the stream offset, §3.2), frames
//! it as a TLS record and hands it to the NIC as one TSO train. The
//! simulated clients GCM-open every record and compare the plaintext
//! against the catalog oracle — a stateless-retransmission bug, a
//! nonce-derivation bug, or a buffer-recycling bug all fail loudly
//! here.
//!
//!     cargo run --release --example https_streaming

use disk_crypt_net::atlas::AtlasConfig;
use disk_crypt_net::workload::{run_scenario, Scenario, ServerKind};

fn main() {
    println!("Disk|Crypt|Net: encrypted streaming through Atlas\n");
    let cfg = AtlasConfig {
        encrypted: true,
        ..AtlasConfig::default()
    };
    let scenario = Scenario::smoke(ServerKind::Atlas(cfg), 12, 7);
    let m = run_scenario(&scenario);

    println!("  responses served      : {}", m.responses);
    println!(
        "  network goodput       : {:.2} Gb/s (wire bytes incl. record framing)",
        m.net_gbps
    );
    println!("  GCM-verified plaintext: {} bytes", m.verified_bytes);
    println!("  tag/content failures  : {}", m.verify_failures);
    println!("  DRAM read : network   : {:.2}", m.read_net_ratio);
    println!();
    println!(
        "Every record's nonce is salt || (stream_offset / 16KiB), so the server\n\
         keeps no socket buffers: a lost segment is re-fetched from disk and\n\
         re-encrypted to byte-identical ciphertext (see tests/retransmission.rs)."
    );
    assert_eq!(m.verify_failures, 0);
}
