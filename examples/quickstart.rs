//! Quickstart: stream one video chunk through the full Atlas stack.
//!
//! Builds the complete simulated testbed — four NVMe drives with
//! synthetic content, the 2×40 GbE NIC, the delay middlebox — runs a
//! handful of clients against the Atlas server for half a simulated
//! second at **full fidelity** (every payload byte really read from
//! "disk", really framed by TCP, really verified at the client), and
//! prints what happened.
//!
//!     cargo run --release --example quickstart

use disk_crypt_net::atlas::AtlasConfig;
use disk_crypt_net::workload::{run_scenario, Scenario, ServerKind};

fn main() {
    println!("Disk|Crypt|Net quickstart: Atlas serving 8 clients (plaintext)\n");
    let scenario = Scenario::smoke(ServerKind::Atlas(AtlasConfig::default()), 8, 1);
    let m = run_scenario(&scenario);

    println!("  server               : {}", m.label);
    println!("  responses served     : {}", m.responses);
    println!("  network goodput      : {:.2} Gb/s", m.net_gbps);
    println!(
        "  bytes verified       : {} (byte-exact against the content oracle)",
        m.verified_bytes
    );
    println!("  verification failures: {}", m.verify_failures);
    println!("  DRAM read traffic    : {:.2} Gb/s", m.mem_read_gbps);
    println!("  DRAM write traffic   : {:.2} Gb/s", m.mem_write_gbps);
    println!();
    println!(
        "At this light load every payload byte travels disk-DMA -> LLC -> NIC-DMA\n\
         without touching DRAM — the paper's Fig 5 ideal. Raise the client count\n\
         (see the fig11/fig13 bench binaries) to watch the working set outgrow the\n\
         DDIO share of the LLC and the paper's Fig 12/14 patterns appear."
    );
    assert_eq!(m.verify_failures, 0, "content must verify");
}
