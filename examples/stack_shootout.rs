//! Stack shootout: Atlas vs Netflix vs stock FreeBSD on one workload.
//!
//! A miniature of the paper's Table-style comparison (§4): the same
//! client fleet, catalog and network, served by all three stacks in
//! turn. Full fidelity — every stack's output is byte-verified.
//!
//!     cargo run --release --example stack_shootout

use disk_crypt_net::atlas::AtlasConfig;
use disk_crypt_net::kstack::KstackConfig;
use disk_crypt_net::workload::{run_scenario, Scenario, ServerKind};

fn main() {
    println!("Stack shootout: 24 clients, 300 KB chunks, uncachable workload\n");
    println!(
        "{:<24} {:>9} {:>8} {:>9} {:>9} {:>7}",
        "stack", "net Gb/s", "CPU %", "memR Gb/s", "memW Gb/s", "verify"
    );
    for (name, server) in [
        ("Atlas (4 cores)", ServerKind::Atlas(AtlasConfig::default())),
        (
            "Netflix (8 cores)",
            ServerKind::Kstack(KstackConfig::netflix()),
        ),
        (
            "Stock FreeBSD (8 cores)",
            ServerKind::Kstack(KstackConfig::stock()),
        ),
    ] {
        let sc = Scenario::smoke(server, 24, 99);
        let m = run_scenario(&sc);
        println!(
            "{:<24} {:>9.2} {:>8.0} {:>9.2} {:>9.2} {:>7}",
            name,
            m.net_gbps,
            m.cpu_pct,
            m.mem_read_gbps,
            m.mem_write_gbps,
            if m.verify_failures == 0 { "ok" } else { "FAIL" }
        );
        assert_eq!(m.verify_failures, 0);
    }
    println!(
        "\nNote: at this scale no stack is saturated; run the fig11/fig13 bench\n\
         binaries for the paper's full comparison under load."
    );
}
