//! diskmap tour: the paper's Table 1 API, end to end.
//!
//! Walks the whole §3.1.2 lifecycle against one simulated P3700:
//! `nvme_open` (attach + pinned buffer pool + IOMMU programming),
//! `nvme_read` (command crafting, PRP lists, MDTS splitting),
//! `nvme_sqsync` (one doorbell syscall for a whole batch),
//! `nvme_consume_completions` (polled, out-of-order-safe), buffer
//! recycling (LIFO), and the IOMMU rejecting a stray DMA.
//!
//!     cargo run --release --example diskmap_tour

use disk_crypt_net::diskmap::{DiskId, DiskmapError, DiskmapKernel, IoDesc, NvmeQueue};
use disk_crypt_net::mem::{CostParams, HostMem, LlcConfig, MemSystem, PhysAlloc};
use disk_crypt_net::nvme::{NvmeCommand, NvmeConfig, NvmeDevice, Opcode, SyntheticBacking};
use disk_crypt_net::simcore::Nanos;

fn main() {
    let costs = CostParams::default();
    let mut mem = MemSystem::new(LlcConfig::xeon_e5_2667v3(), costs, Nanos::from_millis(1));
    let mut host = HostMem::new();
    let mut phys = PhysAlloc::new();

    // The diskmap kernel module owns the device; datapath queue pairs
    // are detached from the in-kernel stack at attach time.
    let mut kernel = DiskmapKernel::new(vec![NvmeDevice::new(
        NvmeConfig::default(),
        Box::new(SyntheticBacking::new(7)),
        1,
    )]);

    // nvme_open(): attach to (disk 0, qpair 0) with 64 × 16 KiB of
    // pinned, IOMMU-mapped DMA buffer memory.
    let mut q =
        NvmeQueue::nvme_open(&mut kernel, DiskId(0), 0, 64, 16 * 1024, &mut phys).expect("attach");
    println!("attached: 64 x 16KiB diskmap buffers, IOMMU programmed");

    // Stage a batch of reads — no syscalls yet.
    let mut bufs = Vec::new();
    for i in 0..8u64 {
        let buf = q.pool().alloc().expect("pool sized for this");
        q.nvme_read(
            IoDesc {
                user: i,
                buf,
                nsid: 1,
                offset: i * 16384,
                len: 16384,
            },
            &costs,
        );
        bufs.push(buf);
    }
    println!(
        "staged  : {} READ commands (0 syscalls so far)",
        q.staged_count()
    );

    // nvme_sqsync(): one doorbell syscall moves the whole batch.
    q.nvme_sqsync(&mut kernel, Nanos::ZERO, &costs)
        .expect("sqsync");
    println!(
        "sqsync  : batch submitted with {} syscall(s)",
        kernel.syscalls
    );

    // Poll completions (out-of-order completion handled by libnvme).
    let mut done = Vec::new();
    while done.len() < 8 {
        let t = kernel.poll_at().expect("I/O in flight");
        kernel.advance(t, &mut mem, &mut host);
        let (ios, _) = q
            .nvme_consume_completions(&mut kernel, t, 64, &costs)
            .expect("consume");
        for io in ios {
            println!(
                "complete: req {} ({} bytes) in {:.0} us",
                io.user,
                io.len,
                (io.completed_at - io.submitted_at).as_micros_f64()
            );
            done.push(io);
        }
    }

    // The data is real: verify one buffer against the device oracle.
    let got = host.read_region(q.buf_region(bufs[3], 16384));
    let mut want = vec![0u8; 16384];
    SyntheticBacking::new(7).expected(1, 3 * 16384, &mut want);
    assert_eq!(got, want);
    println!("verify  : buffer 3 matches the namespace content oracle");

    // LIFO recycling: the most-recently-freed buffer is reused first
    // (maximizes the chance it is still in the LLC, §4.1).
    for b in bufs {
        q.pool().free(b);
    }
    let reused = q.pool().alloc().unwrap();
    println!("recycle : LIFO pool returned buffer #{} first", reused.0);

    // Protection: DMA to memory outside the attached pool faults at
    // the doorbell syscall (the IOMMU page table has no mapping).
    let stray = phys.alloc(16 * 1024);
    let cmd = NvmeCommand {
        opcode: Opcode::Read,
        cid: 999,
        nsid: 1,
        slba: 0,
        nlb: 32,
        prp: vec![stray],
    };
    let mut cmds = vec![cmd];
    let err = kernel.sqsync(0, Nanos::ZERO, &mut cmds);
    assert!(matches!(err, Err(DiskmapError::IommuFault)));
    println!("protect : stray DMA rejected ({})", err.unwrap_err());
}
