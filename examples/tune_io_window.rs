//! Tune the NVMe I/O window: reproduce the measurement behind Fig 6.
//!
//! Before building Atlas, the paper profiles a P3700 to find the I/O
//! window where the drive is saturated *and* latency is still far
//! below WAN RTTs — the fact that makes putting the SSD inside the
//! TCP ACK clock viable at all (§3). This example runs that profile
//! and prints the operating-point recommendation.
//!
//!     cargo run --release --example tune_io_window

use dcn_bench::storage::run_diskmap;
use disk_crypt_net::simcore::Nanos;

fn main() {
    println!("Profiling one simulated P3700 with 16 KiB reads...\n");
    println!("{:>7} {:>12} {:>12}", "window", "latency(ms)", "Gb/s");
    let mut best: Option<(usize, f64, f64)> = None;
    let mut max_gbps: f64 = 0.0;
    let mut results = Vec::new();
    for window in [1usize, 2, 4, 8, 16, 32, 64, 128, 256, 512] {
        let r = run_diskmap(1, 16 * 1024, window, Nanos::from_millis(200), 42);
        println!(
            "{window:>7} {:>12.3} {:>12.1}",
            r.mean_latency_us / 1000.0,
            r.throughput_gbps
        );
        max_gbps = max_gbps.max(r.throughput_gbps);
        results.push((window, r.mean_latency_us, r.throughput_gbps));
    }
    for (window, lat_us, gbps) in results {
        if gbps >= 0.95 * max_gbps && lat_us < 1000.0 && best.is_none() {
            best = Some((window, lat_us, gbps));
        }
    }
    match best {
        Some((w, lat, gbps)) => println!(
            "\nOperating point: window {w} -> {gbps:.1} Gb/s at {:.2} ms latency\n\
             (≥95% of peak, latency well under typical WAN RTTs — safe to clock\n\
             this drive off TCP ACKs, as §3 concludes).",
            lat / 1000.0
        ),
        None => println!("\nNo window met the criteria — check the firmware model."),
    }
}
