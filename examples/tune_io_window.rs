//! Tune the NVMe I/O window: reproduce the measurement behind Fig 6.
//!
//! Before building Atlas, the paper profiles a P3700 to find the I/O
//! window where the drive is saturated *and* latency is still far
//! below WAN RTTs — the fact that makes putting the SSD inside the
//! TCP ACK clock viable at all (§3). This example runs that profile
//! two ways and checks they agree:
//!
//!   1. the paper's offline manual sweep over fixed windows, picking
//!      the first window with ≥95% of peak throughput under 1 ms, and
//!   2. the online autotuner (`dcn_srvcore::IoTuner`) that Atlas now
//!      runs in production, which converges on an operating point from
//!      completion latency and queue occupancy alone.
//!
//!     cargo run --release --example tune_io_window

use dcn_bench::storage::{run_diskmap, run_diskmap_autotuned};
use dcn_srvcore::AutotuneConfig;
use disk_crypt_net::simcore::Nanos;

fn main() {
    println!("Profiling one simulated P3700 with 16 KiB reads...\n");
    println!("{:>7} {:>12} {:>12}", "window", "latency(ms)", "Gb/s");
    let mut best: Option<(usize, f64, f64)> = None;
    let mut max_gbps: f64 = 0.0;
    let mut results = Vec::new();
    for window in [1usize, 2, 4, 8, 16, 32, 64, 128, 256, 512] {
        let r = run_diskmap(1, 16 * 1024, window, Nanos::from_millis(200), 42);
        println!(
            "{window:>7} {:>12.3} {:>12.1}",
            r.mean_latency_us / 1000.0,
            r.throughput_gbps
        );
        max_gbps = max_gbps.max(r.throughput_gbps);
        results.push((window, r.mean_latency_us, r.throughput_gbps));
    }
    for (window, lat_us, gbps) in results {
        if gbps >= 0.95 * max_gbps && lat_us < 1000.0 && best.is_none() {
            best = Some((window, lat_us, gbps));
        }
    }
    let Some((w, lat, gbps)) = best else {
        println!("\nNo window met the criteria — check the firmware model.");
        return;
    };
    println!(
        "\nManual sweep: window {w} -> {gbps:.1} Gb/s at {:.2} ms latency\n\
         (≥95% of peak, latency well under typical WAN RTTs — safe to clock\n\
         this drive off TCP ACKs, as §3 concludes).",
        lat / 1000.0
    );

    println!("\nNow letting the online autotuner find its own operating point...");
    let (auto, point) = run_diskmap_autotuned(
        1,
        16 * 1024,
        AutotuneConfig::on(),
        Nanos::from_millis(200),
        42,
    );
    println!(
        "Autotuned: cap {} in-flight, watermark {} B -> {:.1} Gb/s at {:.2} ms\n\
         (EWMA latency {:.0} µs, {} controller adjustments)",
        point.inflight_cap,
        point.watermark,
        auto.throughput_gbps,
        auto.mean_latency_us / 1000.0,
        point.ewma_latency_ns as f64 / 1000.0,
        point.adjustments
    );

    // The two methods should land on the same conclusion: drive near
    // saturation with latency still well under WAN RTTs.
    let agree = auto.throughput_gbps >= 0.90 * gbps && auto.mean_latency_us < 1000.0;
    if agree {
        println!(
            "\nOK: autotuner within 10% of the manual-sweep operating point\n\
             ({:.1} vs {gbps:.1} Gb/s) with latency under 1 ms — the online\n\
             controller reproduces the paper's offline profiling result.",
            auto.throughput_gbps
        );
    } else {
        println!(
            "\nMISMATCH: autotuner reached {:.1} Gb/s at {:.2} ms vs manual\n\
             {gbps:.1} Gb/s — controller and sweep disagree; investigate.",
            auto.throughput_gbps,
            auto.mean_latency_us / 1000.0
        );
        std::process::exit(1);
    }
}
