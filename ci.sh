#!/usr/bin/env bash
# Local CI gate: formatting, lints, release build, full test suite.
# Run from the repo root; exits non-zero on the first failure.
set -euo pipefail

echo "==> repo hygiene: no build artifacts tracked in git"
if git ls-files | grep -q '^target/'; then
    echo "error: target/ build artifacts are tracked in git (git rm -r --cached target)" >&2
    exit 1
fi

echo "==> cargo fmt --check"
cargo fmt --all -- --check

echo "==> cargo clippy (deny warnings)"
cargo clippy --workspace --all-targets -- -D warnings

echo "==> cargo build --release"
cargo build --release

echo "==> fault-injection matrix (seeded loss / device-error / replay tests)"
cargo test -q --release --test faults --test retransmission --test observability

echo "==> cluster smoke (multi-server scale-out / failover)"
cargo test -q --release --test cluster

echo "==> overload smoke (2x admission flood: zero leaks, zero verify failures, shedding engaged)"
cargo test -q --release --test overload two_x_overload_smoke

echo "==> perf gate (perf_baseline vs committed BENCH_perf_baseline.json, plus determinism)"
perf_tmp="$(mktemp -d)"
trap 'rm -rf "$perf_tmp"' EXIT
./target/release/perf_baseline --out "$perf_tmp/run1.json" --check BENCH_perf_baseline.json
./target/release/perf_baseline --out "$perf_tmp/run2.json" >/dev/null
cmp "$perf_tmp/run1.json" "$perf_tmp/run2.json" \
    || { echo "error: perf_baseline is nondeterministic (back-to-back runs differ)" >&2; exit 1; }

echo "==> I/O-window gate (zero-alloc steady state + autotune determinism/pass-through)"
cargo test -q --release --test iowindow

echo "==> ABR gate (controller properties, QoE e2e, rung-claim verification, replay)"
cargo test -q --release --test abr

echo "==> ABR ablation smoke (on-off workload matrix + burst microscope)"
./target/release/ablation_abr --quick

echo "==> tier gate (1M-object Zipf e2e on both stacks + cluster, cold-path byte-exactness, zero-leak audit)"
cargo test -q --release -p dcn-tier
cargo test -q --release --test tiers

echo "==> tier ablation smoke (back-to-back runs must be byte-identical)"
./target/release/ablation_tiers --quick --out "$perf_tmp/tiers1.json" >/dev/null
./target/release/ablation_tiers --quick --out "$perf_tmp/tiers2.json" >/dev/null
cmp "$perf_tmp/tiers1.json" "$perf_tmp/tiers2.json" \
    || { echo "error: ablation_tiers is nondeterministic (back-to-back runs differ)" >&2; exit 1; }

echo "==> cargo test"
cargo test -q --workspace

echo "CI OK"
