#!/usr/bin/env bash
# Local CI gate: formatting, lints, release build, full test suite.
# Run from the repo root; exits non-zero on the first failure.
set -euo pipefail

echo "==> cargo fmt --check"
cargo fmt --all -- --check

echo "==> cargo clippy (deny warnings)"
cargo clippy --workspace --all-targets -- -D warnings

echo "==> cargo build --release"
cargo build --release

echo "==> fault-injection matrix (seeded loss / device-error / replay tests)"
cargo test -q --release --test faults --test retransmission --test observability

echo "==> cargo test"
cargo test -q --workspace

echo "CI OK"
