//! # disk-crypt-net — facade crate
//!
//! Re-exports the whole Disk|Crypt|Net reproduction behind one
//! dependency. See DESIGN.md for the crate map and EXPERIMENTS.md for
//! the paper-vs-measured record.
//!
//! The headline entry points:
//!
//! * [`atlas`] — the Atlas video-streaming stack (the paper's core
//!   contribution): buffer-cache-free, ACK-clocked disk reads,
//!   in-place encryption, process-to-completion.
//! * [`diskmap`] — the kernel-bypass NVMe storage framework with the
//!   paper's Table 1 API.
//! * [`kstack`] — the conventional-stack baselines (stock
//!   nginx/FreeBSD and the Netflix-optimized variant).
//! * [`workload`] — scenario runner that reproduces every figure.
//! * [`cluster`] — N Atlas servers behind a content-aware dispatcher
//!   (consistent hashing, hot-set replication, failover).

pub use dcn_atlas as atlas;
pub use dcn_bench as bench;
pub use dcn_cluster as cluster;
pub use dcn_crypto as crypto;
pub use dcn_diskmap as diskmap;
pub use dcn_faults as faults;
pub use dcn_httpd as httpd;
pub use dcn_kstack as kstack;
pub use dcn_mem as mem;
pub use dcn_netdev as netdev;
pub use dcn_nvme as nvme;
pub use dcn_obs as obs;
pub use dcn_packet as packet;
pub use dcn_simcore as simcore;
pub use dcn_srvcore as srvcore;
pub use dcn_store as store;
pub use dcn_tcpstack as tcpstack;
pub use dcn_tier as tier;
pub use dcn_workload as workload;
